//! Semi-naïve fixpoint evaluation.
//!
//! The LogicBlox engine "evaluates rules using the semi-naïve algorithm until
//! a fixed-point is reached" (paper §2).  [`Evaluator`] implements that
//! algorithm stratum-by-stratum over a workspace's relations, with two
//! departures documented in DESIGN.md:
//!
//! * Aggregation rules are *recomputed from the full body relations* on every
//!   iteration of their stratum, replacing prior values for the same key.
//!   This supports the path-vector use case, whose `bestcost` aggregate is
//!   (syntactically) mutually recursive with the `says`-mediated import rules.
//! * Head-existential variables (allowed by DatalogLB rules such as the
//!   `pathvar` rule) mint one fresh entity per distinct body binding, memoized
//!   so re-derivations are idempotent.
//!
//! ## Round structure (DESIGN.md §10)
//!
//! Each round of a stratum runs in two phases.  **Phase A** evaluates every
//! `(rule, delta-literal)` combination read-only against the round-start
//! relations: batch-eligible combinations run the columnar id-space executor
//! ([`super::batch`]), the rest the tuple-at-a-time join, and independent
//! combinations fan out across the persistent worker pool.  **Phase B**
//! inserts the collected derivations sequentially in combination order.
//! Because phase A never observes phase B, the end state of a round is a
//! pure function of its start state — independent of the worker count.
//! Rules with head existentials always evaluate serially in phase A: entity
//! minting is order-sensitive.

use super::aggregate::evaluate_agg_rule_exec;
use super::batch::{self, BatchJob, IdBatch};
use super::bindings::Bindings;
use super::exec::{self, EvalOptions};
use super::join::{DeltaRestriction, DeltaTuples, JoinContext};
use super::plan::{PlanCache, PlanKey, PlanStats, RulePlan};
use super::pool::WorkerPool;
use super::runtime_pred_name;
use super::EvalConfig;
use crate::ast::{Literal, Rule};
use crate::error::{DatalogError, Result};
use crate::intern::Interner;
use crate::relation::Relation;
use crate::schema::{PredicateKind, Schema};
use crate::udf::UdfRegistry;
use crate::value::{Tuple, Value};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// Statistics of one fixpoint run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FixpointStats {
    /// Number of tuples newly derived (over all predicates).
    pub derived: usize,
    /// Total number of semi-naïve iterations across strata.
    pub iterations: usize,
}

/// Result of evaluating one `(rule, delta-literal)` combination in phase A.
/// Id-space derivations stay interned until insertion; only genuinely new
/// tuples are rehydrated (for the delta sets).
enum Derivation {
    Values(Vec<(String, Tuple)>),
    Ids(Vec<(String, IdBatch)>),
}

/// Undo log of the mutations one fixpoint run performs, letting
/// `Workspace::transaction_incremental` roll a failed transaction back
/// without having cloned the full relation map.  Ops are recorded in
/// execution order; undoing replays them in reverse — an `Added` op removes
/// the tuple again, a `Displaced` op re-inserts the value an aggregate
/// recomputation displaced.  Interleaving matters: one run can insert a
/// tuple and later displace it (or displace, then re-insert), and only
/// strict reverse-order replay restores the exact prior state.
#[derive(Debug, Default)]
pub struct EvalJournal {
    ops: Vec<JournalOp>,
    /// Relations created during the run, removed again on undo.
    created: Vec<String>,
    /// Existential-memo keys minted during the run.
    minted: Vec<(usize, Vec<Value>)>,
}

#[derive(Debug)]
enum JournalOp {
    Added(String, Tuple),
    Displaced(String, Tuple),
}

impl EvalJournal {
    pub(crate) fn record_added(&mut self, pred: &str, tuple: Tuple) {
        self.ops.push(JournalOp::Added(pred.to_string(), tuple));
    }

    pub(crate) fn record_displaced(&mut self, pred: &str, tuple: Tuple) {
        self.ops.push(JournalOp::Displaced(pred.to_string(), tuple));
    }

    pub(crate) fn record_created(&mut self, pred: &str) {
        self.created.push(pred.to_string());
    }

    /// The run's surviving additions per predicate: every tuple recorded as
    /// inserted that is still stored (an aggregate displacement can remove
    /// an earlier insertion).  This is the incremental constraint-check
    /// delta — the same set a full-snapshot version diff would produce.
    pub fn added_delta(
        &self,
        relations: &HashMap<String, Relation>,
    ) -> HashMap<String, HashSet<Tuple>> {
        let mut delta: HashMap<String, HashSet<Tuple>> = HashMap::new();
        for op in &self.ops {
            if let JournalOp::Added(pred, tuple) = op {
                if relations.get(pred).is_some_and(|r| r.contains(tuple)) {
                    delta.entry(pred.clone()).or_default().insert(tuple.clone());
                }
            }
        }
        delta
    }

    /// Roll every journaled mutation back.  Restores the relations and the
    /// existential memo to their exact pre-run state; the caller restores
    /// the (plain-copy) entity counter itself.
    pub fn undo(
        self,
        relations: &mut HashMap<String, Relation>,
        existential_memo: &mut HashMap<(usize, Vec<Value>), u64>,
    ) {
        for op in self.ops.into_iter().rev() {
            match op {
                JournalOp::Added(pred, tuple) => {
                    if let Some(relation) = relations.get_mut(&pred) {
                        relation.remove(&tuple);
                    }
                }
                JournalOp::Displaced(pred, tuple) => {
                    // The displacing tuple was journaled as `Added` after
                    // this op, so reverse replay has already removed it;
                    // re-inserting the displaced value cannot conflict.
                    if let Some(relation) = relations.get_mut(&pred) {
                        let _ = relation.insert_or_replace(tuple);
                    }
                }
            }
        }
        for pred in self.created {
            relations.remove(&pred);
        }
        for key in self.minted {
            existential_memo.remove(&key);
        }
    }
}

/// Mutable evaluation state borrowed from a workspace.
pub struct Evaluator<'a> {
    pub relations: &'a mut HashMap<String, Relation>,
    pub schema: &'a Schema,
    pub udfs: &'a UdfRegistry,
    pub config: &'a EvalConfig,
    /// Counter used to mint fresh entities for head-existential variables.
    pub entity_counter: &'a mut u64,
    /// Memo of already-minted existential entities, keyed by rule index and
    /// the binding of the rule's body variables.
    pub existential_memo: &'a mut HashMap<(usize, Vec<Value>), u64>,
    /// Compiled rule plans, reused across iterations (and across ticks when
    /// the owning workspace lives that long).
    pub plan_cache: &'a mut PlanCache,
    /// Planner / index counters.
    pub plan_stats: &'a PlanStats,
    /// The workspace dictionary every relation this evaluator creates must
    /// share — batch execution requires one dictionary per workspace (see
    /// [`crate::intern`]).
    pub interner: &'a Arc<Interner>,
    /// Persistent worker pool for sharded and rule-level fan-out.  `None`
    /// keeps every execution on the calling thread.
    pub pool: Option<&'a WorkerPool>,
    /// Undo log for incremental (snapshot-free) transactions.  `None` — the
    /// default everywhere except [`Evaluator::run_seeded`] callers — records
    /// nothing.
    pub journal: Option<&'a mut EvalJournal>,
}

impl<'a> Evaluator<'a> {
    /// Run all strata to fixpoint.  `strata` holds rule indices (into `rules`)
    /// grouped by stratum in evaluation order.
    pub fn run(&mut self, rules: &[Rule], strata: &[Vec<usize>]) -> Result<FixpointStats> {
        let mut stats = FixpointStats::default();
        for stratum in strata {
            let stratum_stats = self.run_stratum(rules, stratum)?;
            stats.derived += stratum_stats.derived;
            stats.iterations += stratum_stats.iterations;
        }
        Ok(stats)
    }

    /// Run a single stratum (a set of mutually recursive rules) to fixpoint.
    pub fn run_stratum(&mut self, rules: &[Rule], stratum: &[usize]) -> Result<FixpointStats> {
        let mut stats = FixpointStats::default();

        // Head predicates derived in this stratum; deltas are tracked per
        // such predicate.
        let mut idb_preds: HashSet<String> = HashSet::new();
        for &rule_index in stratum {
            for atom in &rules[rule_index].head {
                idb_preds.insert(runtime_pred_name(&atom.pred)?);
            }
        }

        let (agg_rules, normal_rules): (Vec<usize>, Vec<usize>) = stratum
            .iter()
            .copied()
            .partition(|&i| rules[i].agg.is_some());

        // Initial (naïve) round over the full relations.
        let mut delta: HashMap<String, HashSet<Tuple>> = HashMap::new();
        let combos: Vec<(usize, Option<usize>)> =
            normal_rules.iter().map(|&index| (index, None)).collect();
        let empty_delta = HashMap::new();
        for derivation in self.evaluate_round(rules, &combos, &empty_delta)? {
            stats.derived += self.insert_derivation(derivation, &mut delta)?;
        }
        for &rule_index in &agg_rules {
            let derived = self.recompute_aggregate(rules, rule_index)?;
            stats.derived += self.insert_replacing(derived, &mut delta)?;
        }
        stats.iterations += 1;

        // Semi-naïve iterations.
        while delta.values().any(|d| !d.is_empty()) {
            if stats.iterations > self.config.max_iterations {
                return Err(DatalogError::FixpointBudget {
                    iterations: self.config.max_iterations,
                });
            }
            let mut combos: Vec<(usize, Option<usize>)> = Vec::new();
            for &rule_index in &normal_rules {
                let rule = &rules[rule_index];
                for (literal_index, literal) in rule.body.iter().enumerate() {
                    let Literal::Pos(atom) = literal else {
                        continue;
                    };
                    let pred = runtime_pred_name(&atom.pred)?;
                    if !idb_preds.contains(&pred) {
                        continue;
                    }
                    let Some(pred_delta) = delta.get(&pred) else {
                        continue;
                    };
                    if pred_delta.is_empty() {
                        continue;
                    }
                    combos.push((rule_index, Some(literal_index)));
                }
            }
            let mut next_delta: HashMap<String, HashSet<Tuple>> = HashMap::new();
            for derivation in self.evaluate_round(rules, &combos, &delta)? {
                stats.derived += self.insert_derivation(derivation, &mut next_delta)?;
            }
            for &rule_index in &agg_rules {
                let derived = self.recompute_aggregate(rules, rule_index)?;
                stats.derived += self.insert_replacing(derived, &mut next_delta)?;
            }
            delta = next_delta;
            stats.iterations += 1;
        }
        Ok(stats)
    }

    /// Run all strata to fixpoint from a **converged** database, driving the
    /// first round of each stratum off `seed` — the base tuples inserted
    /// since the last fixpoint — instead of naïvely re-evaluating every rule.
    ///
    /// From a converged state the naïve round is pure overhead: a rule
    /// binding that touches no new tuple can only re-derive a tuple that is
    /// already stored.  Restricting the first round to combinations with at
    /// least one new-tuple literal therefore produces the same final state,
    /// the same genuinely-new deltas, and the same verdicts as
    /// [`Evaluator::run`], at cost proportional to the seed's consequences
    /// rather than to the whole database.  The caller owns two
    /// preconditions: the database is at fixpoint, and no rule negates a
    /// predicate that can *shrink* between fixpoints — aggregate heads are
    /// the only such predicates (displacement is the one non-monotone
    /// mutation a committed transaction performs), which is what
    /// `Workspace` gates on before choosing this entry point.
    pub fn run_seeded(
        &mut self,
        rules: &[Rule],
        strata: &[Vec<usize>],
        seed: &HashMap<String, HashSet<Tuple>>,
    ) -> Result<FixpointStats> {
        let mut stats = FixpointStats::default();
        // Everything new since the pre-transaction fixpoint: the seed plus
        // every tuple derived so far.  Later strata must see earlier strata's
        // additions as first-round drivers, so each stratum merges its deltas
        // back in.
        let mut accumulated: HashMap<String, HashSet<Tuple>> = seed
            .iter()
            .filter(|(_, set)| !set.is_empty())
            .map(|(pred, set)| (pred.clone(), set.clone()))
            .collect();
        for stratum in strata {
            let stratum_stats = self.run_stratum_seeded(rules, stratum, &mut accumulated)?;
            stats.derived += stratum_stats.derived;
            stats.iterations += stratum_stats.iterations;
        }
        Ok(stats)
    }

    /// One stratum of [`Evaluator::run_seeded`]: a seeded first round, then
    /// the ordinary semi-naïve loop of [`Evaluator::run_stratum`].
    fn run_stratum_seeded(
        &mut self,
        rules: &[Rule],
        stratum: &[usize],
        accumulated: &mut HashMap<String, HashSet<Tuple>>,
    ) -> Result<FixpointStats> {
        let mut stats = FixpointStats::default();
        let mut idb_preds: HashSet<String> = HashSet::new();
        for &rule_index in stratum {
            for atom in &rules[rule_index].head {
                idb_preds.insert(runtime_pred_name(&atom.pred)?);
            }
        }
        let (agg_rules, normal_rules): (Vec<usize>, Vec<usize>) = stratum
            .iter()
            .copied()
            .partition(|&i| rules[i].agg.is_some());

        // Seeded first round: every `(rule, positive-literal)` combination
        // whose predicate has accumulated new tuples.  Aggregation rules
        // whose bodies are untouched are skipped — recomputation would
        // reproduce the stored values exactly (the previous fixpoint's final
        // round recomputed them against this same state).
        let mut delta: HashMap<String, HashSet<Tuple>> = HashMap::new();
        let mut combos: Vec<(usize, Option<usize>)> = Vec::new();
        for &rule_index in &normal_rules {
            for (literal_index, literal) in rules[rule_index].body.iter().enumerate() {
                let Literal::Pos(atom) = literal else {
                    continue;
                };
                let pred = runtime_pred_name(&atom.pred)?;
                if accumulated.get(&pred).is_some_and(|set| !set.is_empty()) {
                    combos.push((rule_index, Some(literal_index)));
                }
            }
        }
        for derivation in self.evaluate_round(rules, &combos, accumulated)? {
            stats.derived += self.insert_derivation(derivation, &mut delta)?;
        }
        for &rule_index in &agg_rules {
            if !rule_touched(&rules[rule_index], accumulated) {
                continue;
            }
            let derived = self.recompute_aggregate(rules, rule_index)?;
            stats.derived += self.insert_replacing(derived, &mut delta)?;
        }
        stats.iterations += 1;
        merge_delta(accumulated, &delta);

        // Semi-naïve iterations, exactly as in `run_stratum` (aggregates
        // recompute every round once the stratum is in motion).
        while delta.values().any(|d| !d.is_empty()) {
            if stats.iterations > self.config.max_iterations {
                return Err(DatalogError::FixpointBudget {
                    iterations: self.config.max_iterations,
                });
            }
            let mut combos: Vec<(usize, Option<usize>)> = Vec::new();
            for &rule_index in &normal_rules {
                let rule = &rules[rule_index];
                for (literal_index, literal) in rule.body.iter().enumerate() {
                    let Literal::Pos(atom) = literal else {
                        continue;
                    };
                    let pred = runtime_pred_name(&atom.pred)?;
                    if !idb_preds.contains(&pred) {
                        continue;
                    }
                    let Some(pred_delta) = delta.get(&pred) else {
                        continue;
                    };
                    if pred_delta.is_empty() {
                        continue;
                    }
                    combos.push((rule_index, Some(literal_index)));
                }
            }
            let mut next_delta: HashMap<String, HashSet<Tuple>> = HashMap::new();
            for derivation in self.evaluate_round(rules, &combos, &delta)? {
                stats.derived += self.insert_derivation(derivation, &mut next_delta)?;
            }
            for &rule_index in &agg_rules {
                let derived = self.recompute_aggregate(rules, rule_index)?;
                stats.derived += self.insert_replacing(derived, &mut next_delta)?;
            }
            delta = next_delta;
            stats.iterations += 1;
            merge_delta(accumulated, &delta);
        }
        Ok(stats)
    }

    /// Phase A of one round: evaluate every `(rule, delta-literal)`
    /// combination against the round-start relations and return the
    /// derivations in combination order (phase B —
    /// [`Self::insert_derivation`] — is the caller's loop).
    ///
    /// Plans are prepared serially (they mutate the plan cache and build
    /// indexes); head-existential combinations evaluate serially next
    /// (entity minting is order-sensitive); the remaining combinations are
    /// read-only and fan out across the worker pool when any driving set
    /// clears the parallel threshold.  Errors surface in combination order,
    /// so failures are deterministic at any worker count.
    fn evaluate_round(
        &mut self,
        rules: &[Rule],
        combos: &[(usize, Option<usize>)],
        delta_sets: &HashMap<String, HashSet<Tuple>>,
    ) -> Result<Vec<Derivation>> {
        type ResolvedCombo<'a> = (usize, Option<(usize, &'a HashSet<Tuple>)>);
        let mut resolved: Vec<ResolvedCombo> = Vec::with_capacity(combos.len());
        for &(rule_index, literal) in combos {
            let delta = match literal {
                Some(literal_index) => {
                    let Literal::Pos(atom) = &rules[rule_index].body[literal_index] else {
                        return Err(DatalogError::Eval(
                            "delta combination on a non-positive literal".into(),
                        ));
                    };
                    let pred = runtime_pred_name(&atom.pred)?;
                    let set = delta_sets.get(&pred).ok_or_else(|| {
                        DatalogError::Eval("delta combination without a delta set".into())
                    })?;
                    Some((literal_index, set))
                }
                None => None,
            };
            resolved.push((rule_index, delta));
        }

        let mut plans: Vec<Option<RulePlan>> = Vec::with_capacity(resolved.len());
        for &(rule_index, delta) in &resolved {
            plans.push(self.prepare_plan(rules, rule_index, delta.map(|(i, _)| i)));
        }

        // Batch-compile on this (the evaluator) thread — the only place the
        // batch path interns, which keeps dictionary ids worker-independent.
        let mut results: Vec<Option<Derivation>> = combos.iter().map(|_| None).collect();
        let mut jobs: Vec<Option<BatchJob>> = Vec::with_capacity(resolved.len());
        let mut pending: Vec<usize> = Vec::new();
        for (index, &(rule_index, delta)) in resolved.iter().enumerate() {
            let rule = &rules[rule_index];
            if !rule.head_existentials().is_empty() {
                jobs.push(None);
                continue;
            }
            jobs.push(plans[index].as_ref().and_then(|plan| {
                batch::compile_batch(rule, plan, delta, self.relations, self.udfs, self.interner)
            }));
            pending.push(index);
        }

        // Serial part: head-existential combinations, in combination order.
        for (index, &(rule_index, delta)) in resolved.iter().enumerate() {
            if !rules[rule_index].head_existentials().is_empty() {
                let derived = self.evaluate_rule(rules, rule_index, delta)?;
                results[index] = Some(Derivation::Values(derived));
            }
        }

        // Read-only part.
        let relations: &HashMap<String, Relation> = self.relations;
        let udfs = self.udfs;
        let stats = self.plan_stats;
        let options = &self.config.exec;
        let pool = self.pool;
        let run_one = |index: usize| -> Result<Derivation> {
            let (rule_index, delta) = resolved[index];
            match &jobs[index] {
                Some(job) => {
                    batch::execute_batch(job, relations, stats, options, pool).map(Derivation::Ids)
                }
                None => evaluate_tuple_combo(
                    &rules[rule_index],
                    plans[index].as_ref(),
                    delta,
                    relations,
                    udfs,
                    stats,
                    options,
                    pool,
                )
                .map(Derivation::Values),
            }
        };
        let fan_out = pool.is_some()
            && options.parallel_enabled()
            && pending.len() > 1
            && pending.iter().any(|&index| {
                let (rule_index, delta) = resolved[index];
                driving_size(&rules[rule_index], delta, relations) >= options.parallel_threshold
            });
        if fan_out {
            PlanStats::bump(&stats.parallel_batches);
            let run_one = &run_one;
            let tasks: Vec<_> = pending
                .iter()
                .map(|&index| move || run_one(index))
                .collect();
            let outcomes = pool.expect("fan-out requires a pool").execute(tasks);
            for (&index, outcome) in pending.iter().zip(outcomes) {
                let derivation = outcome
                    .map_err(|_| DatalogError::Eval("evaluation worker panicked".into()))??;
                results[index] = Some(derivation);
            }
        } else {
            for &index in &pending {
                results[index] = Some(run_one(index)?);
            }
        }

        #[cfg(debug_assertions)]
        for &index in &pending {
            if let (Some(_), Some(Derivation::Ids(rows))) = (&jobs[index], &results[index]) {
                let (rule_index, delta) = resolved[index];
                debug_verify_batch(
                    &rules[rule_index],
                    plans[index].as_ref(),
                    delta,
                    relations,
                    udfs,
                    self.interner,
                    rows,
                )?;
            }
        }

        Ok(results
            .into_iter()
            .map(|result| result.expect("every combination evaluated"))
            .collect())
    }

    /// Evaluate one (non-aggregate) rule, optionally restricting one body
    /// literal to a delta set, and return the derived `(predicate, tuple)`
    /// pairs without inserting them.
    ///
    /// Non-existential rules run through the read-only combination path
    /// (sharded across the worker pool when the driving set is large
    /// enough).  Rules with head existentials always run serially: entity
    /// minting is order-sensitive.
    pub fn evaluate_rule(
        &mut self,
        rules: &[Rule],
        rule_index: usize,
        delta: Option<(usize, &HashSet<Tuple>)>,
    ) -> Result<Vec<(String, Tuple)>> {
        let rule = &rules[rule_index];
        let existentials = rule.head_existentials();
        // One observation per (rule, delta) batch execution — coarse enough
        // to stay inside the telemetry overhead budget.
        let _batch_timer =
            secureblox_telemetry::histogram!("datalog_rule_batch_join_ns").start_timer();
        let plan = self.prepare_plan(rules, rule_index, delta.as_ref().map(|(i, _)| *i));

        if existentials.is_empty() {
            return evaluate_tuple_combo(
                rule,
                plan.as_ref(),
                delta,
                self.relations,
                self.udfs,
                self.plan_stats,
                &self.config.exec,
                self.pool,
            );
        }
        PlanStats::bump(&self.plan_stats.serial_batches);

        let mut body_vars: Vec<String> = Vec::new();
        for literal in &rule.body {
            literal.collect_vars(&mut body_vars);
        }
        body_vars.sort();
        body_vars.dedup();

        let mut derived: Vec<(String, Tuple)> = Vec::new();
        let ctx = JoinContext::with_stats(self.relations, self.udfs, self.plan_stats);
        let mut solutions: Vec<Bindings> = Vec::new();
        let mut bindings = Bindings::new();
        let restriction = delta.map(|(index, tuples)| DeltaRestriction {
            literal_index: index,
            delta: DeltaTuples::Set(tuples),
        });
        match &plan {
            Some(plan) => {
                ctx.join_planned(&rule.body, plan, restriction, &mut bindings, &mut |b| {
                    solutions.push(b.clone());
                    Ok(())
                })?
            }
            None => ctx.join(&rule.body, restriction, &mut bindings, &mut |b| {
                solutions.push(b.clone());
                Ok(())
            })?,
        }

        for mut solution in solutions {
            // Mint (or recall) entities for head-existential variables.
            let memo_key: Vec<Value> = body_vars
                .iter()
                .filter_map(|v| solution.get(v).cloned())
                .collect();
            for (offset, var) in existentials.iter().enumerate() {
                let mut key = memo_key.clone();
                key.push(Value::Int(offset as i64));
                let entity_id = match self.existential_memo.entry((rule_index, key)) {
                    std::collections::hash_map::Entry::Occupied(entry) => *entry.get(),
                    std::collections::hash_map::Entry::Vacant(entry) => {
                        *self.entity_counter += 1;
                        if let Some(journal) = self.journal.as_deref_mut() {
                            journal.minted.push(entry.key().clone());
                        }
                        *entry.insert(*self.entity_counter)
                    }
                };
                solution.bind(var, Value::Entity(entity_id));
            }
            // Same head projection the combination paths use — one
            // implementation, so the paths cannot drift.
            derived.append(&mut exec::project_heads(rule, &solution, self.relations)?);
        }
        Ok(derived)
    }

    /// Compile (or fetch) the plan for a rule, build the secondary indexes it
    /// probes, and return it.  `None` when planning is disabled.
    fn prepare_plan(
        &mut self,
        rules: &[Rule],
        rule_index: usize,
        delta_literal: Option<usize>,
    ) -> Option<RulePlan> {
        if !self.config.use_planner {
            return None;
        }
        let plan = self.plan_cache.plan_for(
            PlanKey::Rule {
                rule: rule_index,
                delta: delta_literal,
            },
            &rules[rule_index].body,
            self.relations,
            self.udfs,
            self.plan_stats,
        );
        for spec in &plan.ensure {
            if let Some(relation) = self.relations.get_mut(&spec.pred) {
                if relation.ensure_index(spec.cols) {
                    PlanStats::bump(&self.plan_stats.index_builds);
                }
            }
        }
        Some(plan)
    }

    /// Recompute an aggregation rule from the full body relations, sharding
    /// the fold across the worker pool when the driving relation is large
    /// enough (accumulator merges are commutative and associative, so the
    /// result is order-independent).
    fn recompute_aggregate(
        &mut self,
        rules: &[Rule],
        rule_index: usize,
    ) -> Result<Vec<(String, Tuple)>> {
        let plan = self.prepare_plan(rules, rule_index, None);
        evaluate_agg_rule_exec(
            &rules[rule_index],
            self.relations,
            self.udfs,
            plan.as_ref(),
            Some(self.plan_stats),
            &self.config.exec,
            self.pool,
        )
    }

    /// Phase B: insert one combination's derivations with strict
    /// functional-dependency checking, adding new tuples to `delta`.
    /// Id-space derivations insert without rehydration; only genuinely new
    /// rows are resolved back to values (for the delta set).
    fn insert_derivation(
        &mut self,
        derivation: Derivation,
        delta: &mut HashMap<String, HashSet<Tuple>>,
    ) -> Result<usize> {
        match derivation {
            Derivation::Values(derived) => self.insert_derived(derived, delta),
            Derivation::Ids(derived) => {
                let mut inserted = 0usize;
                for (pred, batch) in derived {
                    self.relation_entry(&pred);
                    for index in 0..batch.rows() {
                        let row = batch.row(index);
                        let relation = self
                            .relations
                            .get_mut(&pred)
                            .expect("relation just ensured");
                        if relation.insert_ids(row)? {
                            inserted += 1;
                            let tuple = relation.interner().resolve_row(row);
                            if let Some(journal) = self.journal.as_deref_mut() {
                                journal.record_added(&pred, tuple.clone());
                            }
                            delta.entry(pred.clone()).or_default().insert(tuple);
                        }
                    }
                }
                Ok(inserted)
            }
        }
    }

    /// Insert derived tuples with strict functional-dependency checking.
    /// Newly inserted tuples are added to `delta`.
    fn insert_derived(
        &mut self,
        derived: Vec<(String, Tuple)>,
        delta: &mut HashMap<String, HashSet<Tuple>>,
    ) -> Result<usize> {
        let mut inserted = 0usize;
        for (pred, tuple) in derived {
            let relation = self.relation_entry(&pred);
            if relation.insert(tuple.clone())? {
                inserted += 1;
                if let Some(journal) = self.journal.as_deref_mut() {
                    journal.record_added(&pred, tuple.clone());
                }
                delta.entry(pred).or_default().insert(tuple);
            }
        }
        Ok(inserted)
    }

    /// Insert derived tuples, replacing existing functional values (used for
    /// aggregate recomputation where new aggregates supersede old ones).
    fn insert_replacing(
        &mut self,
        derived: Vec<(String, Tuple)>,
        delta: &mut HashMap<String, HashSet<Tuple>>,
    ) -> Result<usize> {
        let mut inserted = 0usize;
        for (pred, tuple) in derived {
            let relation = self.relation_entry(&pred);
            let (added, displaced) = relation.insert_or_replace_returning(tuple.clone())?;
            if let Some(journal) = self.journal.as_deref_mut() {
                // Displacement is journaled before the insertion that caused
                // it — reverse replay then restores the displaced value after
                // removing its replacement.
                if let Some(old) = displaced {
                    journal.record_displaced(&pred, old);
                }
                if added {
                    journal.record_added(&pred, tuple.clone());
                }
            }
            if added {
                inserted += 1;
                delta.entry(pred).or_default().insert(tuple);
            }
        }
        Ok(inserted)
    }

    /// Get or create the relation for `pred`, using the schema to decide the
    /// storage kind.  New relations share the evaluator's dictionary.
    pub fn relation_entry(&mut self, pred: &str) -> &mut Relation {
        if !self.relations.contains_key(pred) {
            let key_arity = self.schema.get(pred).and_then(|decl| match decl.kind {
                PredicateKind::Functional { key_arity } => Some(key_arity),
                PredicateKind::Relation => None,
            });
            self.relations.insert(
                pred.to_string(),
                Relation::with_interner(pred, key_arity, Arc::clone(self.interner)),
            );
            if let Some(journal) = self.journal.as_deref_mut() {
                journal.record_created(pred);
            }
        }
        self.relations
            .get_mut(pred)
            .expect("relation just inserted")
    }
}

/// Fold one round's delta into the accumulated new-tuple map of a seeded
/// run (so later strata — and rules positioned after the producing round —
/// see it as a first-round driver).
fn merge_delta(
    accumulated: &mut HashMap<String, HashSet<Tuple>>,
    delta: &HashMap<String, HashSet<Tuple>>,
) {
    for (pred, set) in delta {
        if set.is_empty() {
            continue;
        }
        accumulated
            .entry(pred.clone())
            .or_default()
            .extend(set.iter().cloned());
    }
}

/// Does any body literal of `rule` — positive or negative — read a
/// predicate with accumulated new tuples?  Untouched aggregation rules skip
/// recomputation in a seeded first round: their stored values are exactly
/// what recomputation would produce.
fn rule_touched(rule: &Rule, accumulated: &HashMap<String, HashSet<Tuple>>) -> bool {
    rule.body.iter().any(|literal| {
        let atom = match literal {
            Literal::Pos(atom) | Literal::Neg(atom) => atom,
            Literal::Cmp(..) => return false,
        };
        runtime_pred_name(&atom.pred)
            .is_ok_and(|pred| accumulated.get(&pred).is_some_and(|set| !set.is_empty()))
    })
}

/// Rough size of a combination's driving tuple set, for the rule-level
/// fan-out gate: the delta set when one is pinned, otherwise the first
/// stored body relation.
fn driving_size(
    rule: &Rule,
    delta: Option<(usize, &HashSet<Tuple>)>,
    relations: &HashMap<String, Relation>,
) -> usize {
    if let Some((_, set)) = delta {
        return set.len();
    }
    for literal in &rule.body {
        if let Literal::Pos(atom) = literal {
            if let Ok(pred) = runtime_pred_name(&atom.pred) {
                if let Some(relation) = relations.get(&pred) {
                    return relation.len();
                }
            }
        }
    }
    0
}

/// Evaluate one non-existential `(rule, delta)` combination read-only:
/// sharded across the worker pool when the driving set is large enough,
/// serial tuple-at-a-time otherwise.  Heads are projected inside the
/// enumeration callback — no per-solution `Bindings` clone.
#[allow(clippy::too_many_arguments)]
fn evaluate_tuple_combo(
    rule: &Rule,
    plan: Option<&RulePlan>,
    delta: Option<(usize, &HashSet<Tuple>)>,
    relations: &HashMap<String, Relation>,
    udfs: &UdfRegistry,
    stats: &PlanStats,
    options: &EvalOptions,
    pool: Option<&WorkerPool>,
) -> Result<Vec<(String, Tuple)>> {
    if let Some(merged) =
        evaluate_tuple_sharded(rule, plan, delta, relations, udfs, stats, options, pool)?
    {
        return Ok(merged);
    }
    PlanStats::bump(&stats.serial_batches);
    let ctx = JoinContext::with_stats(relations, udfs, stats);
    let restriction = delta.map(|(index, tuples)| DeltaRestriction {
        literal_index: index,
        delta: DeltaTuples::Set(tuples),
    });
    let mut derived: Vec<(String, Tuple)> = Vec::new();
    let mut bindings = Bindings::new();
    let mut collect = |b: &Bindings| {
        derived.append(&mut exec::project_heads(rule, b, relations)?);
        Ok(())
    };
    match plan {
        Some(plan) => {
            ctx.join_planned(&rule.body, plan, restriction, &mut bindings, &mut collect)?
        }
        None => ctx.join(&rule.body, restriction, &mut bindings, &mut collect)?,
    }
    Ok(derived)
}

/// Try the sharded parallel path for one combination.  Returns `Ok(None)`
/// when the execution should stay serial: parallelism disabled, a driving
/// set below the threshold, or a body with no stored relation to drive on.
///
/// The driving literal is the delta literal when one is pinned, otherwise
/// the first stored-relation literal in plan execution order (the join's
/// outer loop).  Its tuple set is hash-partitioned; each worker runs the
/// full planned join with its shard as a [`DeltaRestriction`] against shared
/// read-only relation views (every index the plan probes was built in
/// [`Evaluator::prepare_plan`] before this point), instantiating head tuples
/// in a worker-local buffer.  Workers sort and deduplicate their own
/// buffers; the caller folds them with a pipelined two-way merge as they
/// arrive — bit-identical to the serial result (asserted in debug builds).
#[allow(clippy::too_many_arguments)]
fn evaluate_tuple_sharded(
    rule: &Rule,
    plan: Option<&RulePlan>,
    delta: Option<(usize, &HashSet<Tuple>)>,
    relations: &HashMap<String, Relation>,
    udfs: &UdfRegistry,
    stats: &PlanStats,
    options: &EvalOptions,
    pool: Option<&WorkerPool>,
) -> Result<Option<Vec<(String, Tuple)>>> {
    if !options.parallel_enabled() {
        return Ok(None);
    }
    let (drive, shards) = match delta {
        Some((index, tuples)) => {
            if tuples.len() < options.parallel_threshold {
                return Ok(None);
            }
            (index, exec::partition(tuples.iter(), options.workers))
        }
        None => {
            let Some(sharded) =
                exec::shard_driving_relation(&rule.body, plan, relations, udfs, options)
            else {
                return Ok(None);
            };
            sharded
        }
    };
    PlanStats::bump(&stats.parallel_batches);
    let merged = exec::run_shards_merged(pool, &shards, |shard| {
        PlanStats::bump(&stats.shards_executed);
        let ctx = JoinContext::with_stats(relations, udfs, stats);
        let restriction = Some(DeltaRestriction {
            literal_index: drive,
            delta: DeltaTuples::Shard(shard),
        });
        let mut derived: Vec<(String, Tuple)> = Vec::new();
        let mut bindings = Bindings::new();
        let mut collect = |b: &Bindings| {
            derived.append(&mut exec::project_heads(rule, b, relations)?);
            Ok(())
        };
        match plan {
            Some(plan) => {
                ctx.join_planned(&rule.body, plan, restriction, &mut bindings, &mut collect)?
            }
            None => ctx.join(&rule.body, restriction, &mut bindings, &mut collect)?,
        }
        Ok(derived)
    })?;
    #[cfg(debug_assertions)]
    debug_verify_against_serial(rule, plan, delta, relations, udfs, &merged)?;
    Ok(Some(merged))
}

/// Debug-build check of the determinism argument: the merged parallel
/// output must equal the serial enumeration of the same execution
/// (sorted and deduplicated).  Runs without stats so the counters
/// reflect only the real evaluation.
#[cfg(debug_assertions)]
fn debug_verify_against_serial(
    rule: &Rule,
    plan: Option<&RulePlan>,
    delta: Option<(usize, &HashSet<Tuple>)>,
    relations: &HashMap<String, Relation>,
    udfs: &UdfRegistry,
    merged: &[(String, Tuple)],
) -> Result<()> {
    let ctx = JoinContext::new(relations, udfs);
    let restriction = delta.map(|(index, tuples)| DeltaRestriction {
        literal_index: index,
        delta: DeltaTuples::Set(tuples),
    });
    let mut serial: Vec<(String, Tuple)> = Vec::new();
    let mut bindings = Bindings::new();
    let mut collect = |b: &Bindings| {
        serial.append(&mut exec::project_heads(rule, b, relations)?);
        Ok(())
    };
    match plan {
        Some(plan) => {
            ctx.join_planned(&rule.body, plan, restriction, &mut bindings, &mut collect)?
        }
        None => ctx.join(&rule.body, restriction, &mut bindings, &mut collect)?,
    }
    debug_assert_eq!(
        exec::canonicalize_derived(serial),
        merged,
        "sharded evaluation diverged from serial evaluation for rule `{rule}`"
    );
    Ok(())
}

/// Debug-build check of the batch executor: its rehydrated output must equal
/// the tuple-at-a-time enumeration of the same combination.
#[cfg(debug_assertions)]
fn debug_verify_batch(
    rule: &Rule,
    plan: Option<&RulePlan>,
    delta: Option<(usize, &HashSet<Tuple>)>,
    relations: &HashMap<String, Relation>,
    udfs: &UdfRegistry,
    interner: &Arc<Interner>,
    rows: &[(String, IdBatch)],
) -> Result<()> {
    let ctx = JoinContext::new(relations, udfs);
    let restriction = delta.map(|(index, tuples)| DeltaRestriction {
        literal_index: index,
        delta: DeltaTuples::Set(tuples),
    });
    let mut serial: Vec<(String, Tuple)> = Vec::new();
    let mut bindings = Bindings::new();
    let mut collect = |b: &Bindings| {
        serial.append(&mut exec::project_heads(rule, b, relations)?);
        Ok(())
    };
    match plan {
        Some(plan) => {
            ctx.join_planned(&rule.body, plan, restriction, &mut bindings, &mut collect)?
        }
        None => ctx.join(&rule.body, restriction, &mut bindings, &mut collect)?,
    }
    let rehydrated: Vec<(String, Tuple)> = rows
        .iter()
        .flat_map(|(pred, batch)| {
            batch
                .iter()
                .map(|row| (pred.clone(), interner.resolve_row(row)))
        })
        .collect();
    debug_assert_eq!(
        exec::canonicalize_derived(serial),
        exec::canonicalize_derived(rehydrated),
        "batch evaluation diverged from tuple-at-a-time for rule `{rule}`"
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;
    use crate::strata::stratify;
    use crate::udf::UdfRegistry;

    /// Build the pieces an Evaluator needs from a program plus EDB facts.
    /// Relations share one dictionary so the batch path is exercised.
    struct Fixture {
        rules: Vec<Rule>,
        strata: Vec<Vec<usize>>,
        schema: Schema,
        udfs: UdfRegistry,
        relations: HashMap<String, Relation>,
        interner: Arc<Interner>,
        entity_counter: u64,
        memo: HashMap<(usize, Vec<Value>), u64>,
        plan_cache: PlanCache,
        plan_stats: PlanStats,
    }

    impl Fixture {
        fn new(source: &str, facts: &[(&str, Vec<Value>)]) -> Self {
            let program = parse_program(source).unwrap();
            let mut schema = Schema::new();
            schema.absorb_program(&program).unwrap();
            let rules: Vec<Rule> = program.rules().cloned().collect();
            let udfs = UdfRegistry::new();
            let strata = stratify(&rules, &udfs).unwrap();
            let interner = Arc::new(Interner::new());
            let mut relations = HashMap::new();
            for (pred, tuple) in facts {
                let key_arity = schema.get(pred).and_then(|d| match d.kind {
                    PredicateKind::Functional { key_arity } => Some(key_arity),
                    PredicateKind::Relation => None,
                });
                relations
                    .entry(pred.to_string())
                    .or_insert_with(|| {
                        Relation::with_interner(*pred, key_arity, Arc::clone(&interner))
                    })
                    .insert(tuple.clone())
                    .unwrap();
            }
            Fixture {
                rules,
                strata,
                schema,
                udfs,
                relations,
                interner,
                entity_counter: 0,
                memo: HashMap::new(),
                plan_cache: PlanCache::new(),
                plan_stats: PlanStats::default(),
            }
        }

        fn run(&mut self) -> FixpointStats {
            let config = EvalConfig::default();
            let mut evaluator = Evaluator {
                relations: &mut self.relations,
                schema: &self.schema,
                udfs: &self.udfs,
                config: &config,
                entity_counter: &mut self.entity_counter,
                existential_memo: &mut self.memo,
                plan_cache: &mut self.plan_cache,
                plan_stats: &self.plan_stats,
                interner: &self.interner,
                pool: None,
                journal: None,
            };
            evaluator.run(&self.rules, &self.strata).unwrap()
        }

        fn tuples(&self, pred: &str) -> Vec<Tuple> {
            self.relations
                .get(pred)
                .map(|r| r.sorted())
                .unwrap_or_default()
        }
    }

    fn s(v: &str) -> Value {
        Value::str(v)
    }

    #[test]
    fn transitive_closure() {
        let mut fixture = Fixture::new(
            "reachable(X, Y) <- link(X, Y).\n\
             reachable(X, Y) <- link(X, Z), reachable(Z, Y).",
            &[
                ("link", vec![s("a"), s("b")]),
                ("link", vec![s("b"), s("c")]),
                ("link", vec![s("c"), s("d")]),
            ],
        );
        let stats = fixture.run();
        let reachable = fixture.tuples("reachable");
        assert_eq!(reachable.len(), 6);
        assert!(reachable.contains(&vec![s("a"), s("d")]));
        assert!(stats.iterations >= 3, "needs several semi-naive rounds");
        // Idempotent: re-running derives nothing new.
        let stats2 = fixture.run();
        assert_eq!(stats2.derived, 0);
    }

    #[test]
    fn negation_in_higher_stratum() {
        let mut fixture = Fixture::new(
            "reachable(X, Y) <- link(X, Y).\n\
             reachable(X, Y) <- link(X, Z), reachable(Z, Y).\n\
             node(X) <- link(X, _).\n\
             node(Y) <- link(_, Y).\n\
             unreachable(X, Y) <- node(X), node(Y), !reachable(X, Y).",
            &[
                ("link", vec![s("a"), s("b")]),
                ("link", vec![s("c"), s("c")]),
            ],
        );
        fixture.run();
        let unreachable = fixture.tuples("unreachable");
        assert!(unreachable.contains(&vec![s("a"), s("a")]));
        assert!(unreachable.contains(&vec![s("b"), s("c")]));
        assert!(!unreachable.contains(&vec![s("a"), s("b")]));
        assert!(!unreachable.contains(&vec![s("c"), s("c")]));
    }

    #[test]
    fn aggregation_min_cost() {
        let mut fixture = Fixture::new(
            "cost[Src, Dst] = C -> node(Src), node(Dst), int[32](C).\n\
             bestcost[Src, Dst] = C <- agg<< C = min(Cx) >> cost3(Src, Dst, Cx).",
            &[
                ("cost3", vec![s("a"), s("b"), Value::Int(5)]),
                ("cost3", vec![s("a"), s("b"), Value::Int(3)]),
                ("cost3", vec![s("a"), s("c"), Value::Int(7)]),
            ],
        );
        fixture.run();
        let best = fixture.tuples("bestcost");
        assert_eq!(best.len(), 2);
        assert!(best.contains(&vec![s("a"), s("b"), Value::Int(3)]));
        assert!(best.contains(&vec![s("a"), s("c"), Value::Int(7)]));
    }

    #[test]
    fn head_existentials_mint_stable_entities() {
        let mut fixture = Fixture::new(
            "pathvar(P) -> .\n\
             pathvar(P), path(P, X, Y) <- link(X, Y).",
            &[
                ("link", vec![s("a"), s("b")]),
                ("link", vec![s("b"), s("c")]),
            ],
        );
        fixture.run();
        let paths = fixture.tuples("path");
        assert_eq!(paths.len(), 2);
        let pathvars = fixture.tuples("pathvar");
        assert_eq!(pathvars.len(), 2);
        // Entities are distinct per binding.
        assert_ne!(paths[0][0], paths[1][0]);
        // Re-running the fixpoint must not mint new entities.
        fixture.run();
        assert_eq!(fixture.tuples("pathvar").len(), 2);
    }

    #[test]
    fn arithmetic_in_heads() {
        let mut fixture = Fixture::new(
            "dist(X, Y, 1) <- link(X, Y).\n\
             dist(X, Y, C + 1) <- link(X, Z), dist(Z, Y, C), C < 10.",
            &[
                ("link", vec![s("a"), s("b")]),
                ("link", vec![s("b"), s("c")]),
                ("link", vec![s("c"), s("d")]),
            ],
        );
        fixture.run();
        let dist = fixture.tuples("dist");
        assert!(dist.contains(&vec![s("a"), s("d"), Value::Int(3)]));
    }

    #[test]
    fn batch_path_runs_for_eligible_rules() {
        let facts: Vec<(&str, Vec<Value>)> = (0..32)
            .flat_map(|i| {
                vec![
                    ("r", vec![Value::Int(i), Value::Int(i + 1)]),
                    ("s", vec![Value::Int(i + 1), Value::Int(i + 2)]),
                ]
            })
            .collect();
        let mut fixture = Fixture::new("out(X, Z) <- r(X, Y), s(Y, Z).", &facts);
        fixture.run();
        assert_eq!(fixture.tuples("out").len(), 32);
        // Derived relations share the fixture dictionary, so re-running
        // stays on the batch path and derives nothing new.
        let stats = fixture.run();
        assert_eq!(stats.derived, 0);
        assert!(Arc::ptr_eq(
            fixture.relations.get("out").unwrap().interner(),
            &fixture.interner
        ));
    }

    #[test]
    fn unsafe_rule_rejected() {
        let mut fixture = Fixture::new(
            "out(X, Y) <- link(X, _).",
            &[("link", vec![s("a"), s("b")])],
        );
        let config = EvalConfig::default();
        let mut evaluator = Evaluator {
            relations: &mut fixture.relations,
            schema: &fixture.schema,
            udfs: &fixture.udfs,
            config: &config,
            entity_counter: &mut fixture.entity_counter,
            existential_memo: &mut fixture.memo,
            plan_cache: &mut fixture.plan_cache,
            plan_stats: &fixture.plan_stats,
            interner: &fixture.interner,
            pool: None,
            journal: None,
        };
        // Y is a head existential, so it actually mints an entity — that is
        // allowed.  A truly unsafe head would use an expression over unbound
        // variables; simulate by evaluating a rule with a singleton that is
        // unset.
        let program = parse_program("out(K) <- link(X, _), K = missing[] + 1.").unwrap();
        let rules: Vec<Rule> = program.rules().cloned().collect();
        let result = evaluator.evaluate_rule(&rules, 0, None);
        assert!(result.is_err() || result.unwrap().is_empty());
    }

    #[test]
    fn fixpoint_budget_enforced() {
        let mut fixture = Fixture::new(
            "count(X, C + 1) <- count(X, C).",
            &[("count", vec![s("a"), Value::Int(0)])],
        );
        let config = EvalConfig {
            max_iterations: 50,
            ..EvalConfig::default()
        };
        let mut evaluator = Evaluator {
            relations: &mut fixture.relations,
            schema: &fixture.schema,
            udfs: &fixture.udfs,
            config: &config,
            entity_counter: &mut fixture.entity_counter,
            existential_memo: &mut fixture.memo,
            plan_cache: &mut fixture.plan_cache,
            plan_stats: &fixture.plan_stats,
            interner: &fixture.interner,
            pool: None,
            journal: None,
        };
        let err = evaluator.run(&fixture.rules, &fixture.strata).unwrap_err();
        assert!(matches!(err, DatalogError::FixpointBudget { .. }));
    }
}
