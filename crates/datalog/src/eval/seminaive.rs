//! Semi-naïve fixpoint evaluation.
//!
//! The LogicBlox engine "evaluates rules using the semi-naïve algorithm until
//! a fixed-point is reached" (paper §2).  [`Evaluator`] implements that
//! algorithm stratum-by-stratum over a workspace's relations, with two
//! departures documented in DESIGN.md:
//!
//! * Aggregation rules are *recomputed from the full body relations* on every
//!   iteration of their stratum, replacing prior values for the same key.
//!   This supports the path-vector use case, whose `bestcost` aggregate is
//!   (syntactically) mutually recursive with the `says`-mediated import rules.
//! * Head-existential variables (allowed by DatalogLB rules such as the
//!   `pathvar` rule) mint one fresh entity per distinct body binding, memoized
//!   so re-derivations are idempotent.

use super::aggregate::evaluate_agg_rule_exec;
use super::bindings::Bindings;
use super::exec;
use super::join::{DeltaRestriction, DeltaTuples, JoinContext};
use super::plan::{PlanCache, PlanKey, PlanStats, RulePlan};
use super::runtime_pred_name;
use super::EvalConfig;
use crate::ast::{Literal, Rule};
use crate::error::{DatalogError, Result};
use crate::relation::Relation;
use crate::schema::{PredicateKind, Schema};
use crate::udf::UdfRegistry;
use crate::value::{Tuple, Value};
use std::collections::{HashMap, HashSet};

/// Statistics of one fixpoint run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FixpointStats {
    /// Number of tuples newly derived (over all predicates).
    pub derived: usize,
    /// Total number of semi-naïve iterations across strata.
    pub iterations: usize,
}

/// Mutable evaluation state borrowed from a workspace.
pub struct Evaluator<'a> {
    pub relations: &'a mut HashMap<String, Relation>,
    pub schema: &'a Schema,
    pub udfs: &'a UdfRegistry,
    pub config: &'a EvalConfig,
    /// Counter used to mint fresh entities for head-existential variables.
    pub entity_counter: &'a mut u64,
    /// Memo of already-minted existential entities, keyed by rule index and
    /// the binding of the rule's body variables.
    pub existential_memo: &'a mut HashMap<(usize, Vec<Value>), u64>,
    /// Compiled rule plans, reused across iterations (and across ticks when
    /// the owning workspace lives that long).
    pub plan_cache: &'a mut PlanCache,
    /// Planner / index counters.
    pub plan_stats: &'a PlanStats,
}

impl<'a> Evaluator<'a> {
    /// Run all strata to fixpoint.  `strata` holds rule indices (into `rules`)
    /// grouped by stratum in evaluation order.
    pub fn run(&mut self, rules: &[Rule], strata: &[Vec<usize>]) -> Result<FixpointStats> {
        let mut stats = FixpointStats::default();
        for stratum in strata {
            let stratum_stats = self.run_stratum(rules, stratum)?;
            stats.derived += stratum_stats.derived;
            stats.iterations += stratum_stats.iterations;
        }
        Ok(stats)
    }

    /// Run a single stratum (a set of mutually recursive rules) to fixpoint.
    pub fn run_stratum(&mut self, rules: &[Rule], stratum: &[usize]) -> Result<FixpointStats> {
        let mut stats = FixpointStats::default();

        // Head predicates derived in this stratum; deltas are tracked per
        // such predicate.
        let mut idb_preds: HashSet<String> = HashSet::new();
        for &rule_index in stratum {
            for atom in &rules[rule_index].head {
                idb_preds.insert(runtime_pred_name(&atom.pred)?);
            }
        }

        let (agg_rules, normal_rules): (Vec<usize>, Vec<usize>) = stratum
            .iter()
            .copied()
            .partition(|&i| rules[i].agg.is_some());

        // Initial (naïve) round over the full relations.
        let mut delta: HashMap<String, HashSet<Tuple>> = HashMap::new();
        for &rule_index in &normal_rules {
            let derived = self.evaluate_rule(rules, rule_index, None)?;
            stats.derived += self.insert_derived(derived, &mut delta)?;
        }
        for &rule_index in &agg_rules {
            let derived = self.recompute_aggregate(rules, rule_index)?;
            stats.derived += self.insert_replacing(derived, &mut delta)?;
        }
        stats.iterations += 1;

        // Semi-naïve iterations.
        while delta.values().any(|d| !d.is_empty()) {
            if stats.iterations > self.config.max_iterations {
                return Err(DatalogError::FixpointBudget {
                    iterations: self.config.max_iterations,
                });
            }
            let mut next_delta: HashMap<String, HashSet<Tuple>> = HashMap::new();
            for &rule_index in &normal_rules {
                let rule = &rules[rule_index];
                for (literal_index, literal) in rule.body.iter().enumerate() {
                    let Literal::Pos(atom) = literal else {
                        continue;
                    };
                    let pred = runtime_pred_name(&atom.pred)?;
                    if !idb_preds.contains(&pred) {
                        continue;
                    }
                    let Some(pred_delta) = delta.get(&pred) else {
                        continue;
                    };
                    if pred_delta.is_empty() {
                        continue;
                    }
                    let derived =
                        self.evaluate_rule(rules, rule_index, Some((literal_index, pred_delta)))?;
                    stats.derived += self.insert_derived(derived, &mut next_delta)?;
                }
            }
            for &rule_index in &agg_rules {
                let derived = self.recompute_aggregate(rules, rule_index)?;
                stats.derived += self.insert_replacing(derived, &mut next_delta)?;
            }
            delta = next_delta;
            stats.iterations += 1;
        }
        Ok(stats)
    }

    /// Evaluate one (non-aggregate) rule, optionally restricting one body
    /// literal to a delta set, and return the derived `(predicate, tuple)`
    /// pairs without inserting them.
    ///
    /// When the worker pool is enabled and the driving tuple set (the delta,
    /// or the plan's first stored relation) is large enough, the enumeration
    /// is hash-partitioned across scoped worker threads and the per-worker
    /// buffers are merged by sorted dedup — bit-identical to the serial
    /// result (asserted in debug builds).  Rules with head existentials
    /// always run serially: entity minting is order-sensitive.
    pub fn evaluate_rule(
        &mut self,
        rules: &[Rule],
        rule_index: usize,
        delta: Option<(usize, &HashSet<Tuple>)>,
    ) -> Result<Vec<(String, Tuple)>> {
        let rule = &rules[rule_index];
        let existentials = rule.head_existentials();
        let mut body_vars: Vec<String> = Vec::new();
        for literal in &rule.body {
            literal.collect_vars(&mut body_vars);
        }
        body_vars.sort();
        body_vars.dedup();

        let plan = self.prepare_plan(rules, rule_index, delta.as_ref().map(|(i, _)| *i));

        if existentials.is_empty() {
            if let Some(merged) = self.evaluate_rule_sharded(rule, plan.as_ref(), delta)? {
                return Ok(merged);
            }
        }
        PlanStats::bump(&self.plan_stats.serial_batches);

        let mut derived: Vec<(String, Tuple)> = Vec::new();
        let ctx = JoinContext::with_stats(self.relations, self.udfs, self.plan_stats);
        let mut solutions: Vec<Bindings> = Vec::new();
        let mut bindings = Bindings::new();
        let restriction = delta.map(|(index, tuples)| DeltaRestriction {
            literal_index: index,
            delta: DeltaTuples::Set(tuples),
        });
        match &plan {
            Some(plan) => {
                ctx.join_planned(&rule.body, plan, restriction, &mut bindings, &mut |b| {
                    solutions.push(b.clone());
                    Ok(())
                })?
            }
            None => ctx.join(&rule.body, restriction, &mut bindings, &mut |b| {
                solutions.push(b.clone());
                Ok(())
            })?,
        }

        for mut solution in solutions {
            // Mint (or recall) entities for head-existential variables.
            if !existentials.is_empty() {
                let memo_key: Vec<Value> = body_vars
                    .iter()
                    .filter_map(|v| solution.get(v).cloned())
                    .collect();
                for (offset, var) in existentials.iter().enumerate() {
                    let mut key = memo_key.clone();
                    key.push(Value::Int(offset as i64));
                    let entity_id = *self
                        .existential_memo
                        .entry((rule_index, key))
                        .or_insert_with(|| {
                            *self.entity_counter += 1;
                            *self.entity_counter
                        });
                    solution.bind(var, Value::Entity(entity_id));
                }
            }
            // Same head projection the sharded workers use — one
            // implementation, so the two paths cannot drift.
            derived.append(&mut exec::project_heads(rule, &solution, self.relations)?);
        }
        Ok(derived)
    }

    /// Try the sharded parallel path for one rule execution.  Returns
    /// `Ok(None)` when the execution should stay serial: a single-worker
    /// pool, a driving set below the threshold, or a body with no stored
    /// relation to drive on.
    ///
    /// The driving literal is the delta literal when one is pinned,
    /// otherwise the first stored-relation literal in plan execution order
    /// (the join's outer loop).  Its tuple set is hash-partitioned; each
    /// worker runs the full planned join with its shard as a
    /// [`DeltaRestriction`] against shared read-only relation views (every
    /// index the plan probes was built in [`Evaluator::prepare_plan`] before
    /// this point), instantiating head tuples in a worker-local buffer.
    fn evaluate_rule_sharded(
        &self,
        rule: &Rule,
        plan: Option<&RulePlan>,
        delta: Option<(usize, &HashSet<Tuple>)>,
    ) -> Result<Option<Vec<(String, Tuple)>>> {
        let options = &self.config.exec;
        if !options.parallel_enabled() {
            return Ok(None);
        }
        let (drive, shards) = match delta {
            Some((index, tuples)) => {
                if tuples.len() < options.parallel_threshold {
                    return Ok(None);
                }
                (index, exec::partition(tuples.iter(), options.workers))
            }
            None => {
                let Some(sharded) = exec::shard_driving_relation(
                    &rule.body,
                    plan,
                    self.relations,
                    self.udfs,
                    options,
                ) else {
                    return Ok(None);
                };
                sharded
            }
        };
        let relations: &HashMap<String, Relation> = self.relations;
        let stats = self.plan_stats;
        PlanStats::bump(&stats.parallel_batches);
        let buffers = exec::run_shards(&shards, |shard| {
            PlanStats::bump(&stats.shards_executed);
            let ctx = JoinContext::with_stats(relations, self.udfs, stats);
            let restriction = Some(DeltaRestriction {
                literal_index: drive,
                delta: DeltaTuples::Shard(shard),
            });
            let mut derived: Vec<(String, Tuple)> = Vec::new();
            let mut bindings = Bindings::new();
            let mut collect = |b: &Bindings| {
                derived.append(&mut exec::project_heads(rule, b, relations)?);
                Ok(())
            };
            match plan {
                Some(plan) => {
                    ctx.join_planned(&rule.body, plan, restriction, &mut bindings, &mut collect)?
                }
                None => ctx.join(&rule.body, restriction, &mut bindings, &mut collect)?,
            }
            Ok(derived)
        })?;
        let merged = exec::merge_derived(buffers);
        #[cfg(debug_assertions)]
        self.debug_verify_against_serial(rule, plan, delta, &merged)?;
        Ok(Some(merged))
    }

    /// Debug-build check of the determinism argument: the merged parallel
    /// output must equal the serial enumeration of the same execution
    /// (sorted and deduplicated).  Runs without stats so the counters
    /// reflect only the real evaluation.
    #[cfg(debug_assertions)]
    fn debug_verify_against_serial(
        &self,
        rule: &Rule,
        plan: Option<&RulePlan>,
        delta: Option<(usize, &HashSet<Tuple>)>,
        merged: &[(String, Tuple)],
    ) -> Result<()> {
        let ctx = JoinContext::new(self.relations, self.udfs);
        let restriction = delta.map(|(index, tuples)| DeltaRestriction {
            literal_index: index,
            delta: DeltaTuples::Set(tuples),
        });
        let mut serial: Vec<(String, Tuple)> = Vec::new();
        let mut bindings = Bindings::new();
        let mut collect = |b: &Bindings| {
            serial.append(&mut exec::project_heads(rule, b, self.relations)?);
            Ok(())
        };
        match plan {
            Some(plan) => {
                ctx.join_planned(&rule.body, plan, restriction, &mut bindings, &mut collect)?
            }
            None => ctx.join(&rule.body, restriction, &mut bindings, &mut collect)?,
        }
        debug_assert_eq!(
            exec::canonicalize_derived(serial),
            merged,
            "sharded evaluation diverged from serial evaluation for rule `{rule}`"
        );
        Ok(())
    }

    /// Compile (or fetch) the plan for a rule, build the secondary indexes it
    /// probes, and return it.  `None` when planning is disabled.
    fn prepare_plan(
        &mut self,
        rules: &[Rule],
        rule_index: usize,
        delta_literal: Option<usize>,
    ) -> Option<RulePlan> {
        if !self.config.use_planner {
            return None;
        }
        let plan = self.plan_cache.plan_for(
            PlanKey::Rule {
                rule: rule_index,
                delta: delta_literal,
            },
            &rules[rule_index].body,
            self.relations,
            self.udfs,
            self.plan_stats,
        );
        for spec in &plan.ensure {
            if let Some(relation) = self.relations.get_mut(&spec.pred) {
                if relation.ensure_index(spec.cols) {
                    PlanStats::bump(&self.plan_stats.index_builds);
                }
            }
        }
        Some(plan)
    }

    /// Recompute an aggregation rule from the full body relations, sharding
    /// the fold across the worker pool when the driving relation is large
    /// enough (accumulator merges are commutative and associative, so the
    /// result is order-independent).
    fn recompute_aggregate(
        &mut self,
        rules: &[Rule],
        rule_index: usize,
    ) -> Result<Vec<(String, Tuple)>> {
        let plan = self.prepare_plan(rules, rule_index, None);
        evaluate_agg_rule_exec(
            &rules[rule_index],
            self.relations,
            self.udfs,
            plan.as_ref(),
            Some(self.plan_stats),
            &self.config.exec,
        )
    }

    /// Insert derived tuples with strict functional-dependency checking.
    /// Newly inserted tuples are added to `delta`.
    fn insert_derived(
        &mut self,
        derived: Vec<(String, Tuple)>,
        delta: &mut HashMap<String, HashSet<Tuple>>,
    ) -> Result<usize> {
        let mut inserted = 0usize;
        for (pred, tuple) in derived {
            let relation = self.relation_entry(&pred);
            if relation.insert(tuple.clone())? {
                inserted += 1;
                delta.entry(pred).or_default().insert(tuple);
            }
        }
        Ok(inserted)
    }

    /// Insert derived tuples, replacing existing functional values (used for
    /// aggregate recomputation where new aggregates supersede old ones).
    fn insert_replacing(
        &mut self,
        derived: Vec<(String, Tuple)>,
        delta: &mut HashMap<String, HashSet<Tuple>>,
    ) -> Result<usize> {
        let mut inserted = 0usize;
        for (pred, tuple) in derived {
            let relation = self.relation_entry(&pred);
            if relation.insert_or_replace(tuple.clone())? {
                inserted += 1;
                delta.entry(pred).or_default().insert(tuple);
            }
        }
        Ok(inserted)
    }

    /// Get or create the relation for `pred`, using the schema to decide the
    /// storage kind.
    pub fn relation_entry(&mut self, pred: &str) -> &mut Relation {
        if !self.relations.contains_key(pred) {
            let key_arity = self.schema.get(pred).and_then(|decl| match decl.kind {
                PredicateKind::Functional { key_arity } => Some(key_arity),
                PredicateKind::Relation => None,
            });
            self.relations
                .insert(pred.to_string(), Relation::new(pred, key_arity));
        }
        self.relations
            .get_mut(pred)
            .expect("relation just inserted")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;
    use crate::strata::stratify;
    use crate::udf::UdfRegistry;

    /// Build the pieces an Evaluator needs from a program plus EDB facts.
    struct Fixture {
        rules: Vec<Rule>,
        strata: Vec<Vec<usize>>,
        schema: Schema,
        udfs: UdfRegistry,
        relations: HashMap<String, Relation>,
        entity_counter: u64,
        memo: HashMap<(usize, Vec<Value>), u64>,
        plan_cache: PlanCache,
        plan_stats: PlanStats,
    }

    impl Fixture {
        fn new(source: &str, facts: &[(&str, Vec<Value>)]) -> Self {
            let program = parse_program(source).unwrap();
            let mut schema = Schema::new();
            schema.absorb_program(&program).unwrap();
            let rules: Vec<Rule> = program.rules().cloned().collect();
            let udfs = UdfRegistry::new();
            let strata = stratify(&rules, &udfs).unwrap();
            let mut relations = HashMap::new();
            for (pred, tuple) in facts {
                let key_arity = schema.get(pred).and_then(|d| match d.kind {
                    PredicateKind::Functional { key_arity } => Some(key_arity),
                    PredicateKind::Relation => None,
                });
                relations
                    .entry(pred.to_string())
                    .or_insert_with(|| Relation::new(*pred, key_arity))
                    .insert(tuple.clone())
                    .unwrap();
            }
            Fixture {
                rules,
                strata,
                schema,
                udfs,
                relations,
                entity_counter: 0,
                memo: HashMap::new(),
                plan_cache: PlanCache::new(),
                plan_stats: PlanStats::default(),
            }
        }

        fn run(&mut self) -> FixpointStats {
            let config = EvalConfig::default();
            let mut evaluator = Evaluator {
                relations: &mut self.relations,
                schema: &self.schema,
                udfs: &self.udfs,
                config: &config,
                entity_counter: &mut self.entity_counter,
                existential_memo: &mut self.memo,
                plan_cache: &mut self.plan_cache,
                plan_stats: &self.plan_stats,
            };
            evaluator.run(&self.rules, &self.strata).unwrap()
        }

        fn tuples(&self, pred: &str) -> Vec<Tuple> {
            self.relations
                .get(pred)
                .map(|r| r.sorted())
                .unwrap_or_default()
        }
    }

    fn s(v: &str) -> Value {
        Value::str(v)
    }

    #[test]
    fn transitive_closure() {
        let mut fixture = Fixture::new(
            "reachable(X, Y) <- link(X, Y).\n\
             reachable(X, Y) <- link(X, Z), reachable(Z, Y).",
            &[
                ("link", vec![s("a"), s("b")]),
                ("link", vec![s("b"), s("c")]),
                ("link", vec![s("c"), s("d")]),
            ],
        );
        let stats = fixture.run();
        let reachable = fixture.tuples("reachable");
        assert_eq!(reachable.len(), 6);
        assert!(reachable.contains(&vec![s("a"), s("d")]));
        assert!(stats.iterations >= 3, "needs several semi-naive rounds");
        // Idempotent: re-running derives nothing new.
        let stats2 = fixture.run();
        assert_eq!(stats2.derived, 0);
    }

    #[test]
    fn negation_in_higher_stratum() {
        let mut fixture = Fixture::new(
            "reachable(X, Y) <- link(X, Y).\n\
             reachable(X, Y) <- link(X, Z), reachable(Z, Y).\n\
             node(X) <- link(X, _).\n\
             node(Y) <- link(_, Y).\n\
             unreachable(X, Y) <- node(X), node(Y), !reachable(X, Y).",
            &[
                ("link", vec![s("a"), s("b")]),
                ("link", vec![s("c"), s("c")]),
            ],
        );
        fixture.run();
        let unreachable = fixture.tuples("unreachable");
        assert!(unreachable.contains(&vec![s("a"), s("a")]));
        assert!(unreachable.contains(&vec![s("b"), s("c")]));
        assert!(!unreachable.contains(&vec![s("a"), s("b")]));
        assert!(!unreachable.contains(&vec![s("c"), s("c")]));
    }

    #[test]
    fn aggregation_min_cost() {
        let mut fixture = Fixture::new(
            "cost[Src, Dst] = C -> node(Src), node(Dst), int[32](C).\n\
             bestcost[Src, Dst] = C <- agg<< C = min(Cx) >> cost3(Src, Dst, Cx).",
            &[
                ("cost3", vec![s("a"), s("b"), Value::Int(5)]),
                ("cost3", vec![s("a"), s("b"), Value::Int(3)]),
                ("cost3", vec![s("a"), s("c"), Value::Int(7)]),
            ],
        );
        fixture.run();
        let best = fixture.tuples("bestcost");
        assert_eq!(best.len(), 2);
        assert!(best.contains(&vec![s("a"), s("b"), Value::Int(3)]));
        assert!(best.contains(&vec![s("a"), s("c"), Value::Int(7)]));
    }

    #[test]
    fn head_existentials_mint_stable_entities() {
        let mut fixture = Fixture::new(
            "pathvar(P) -> .\n\
             pathvar(P), path(P, X, Y) <- link(X, Y).",
            &[
                ("link", vec![s("a"), s("b")]),
                ("link", vec![s("b"), s("c")]),
            ],
        );
        fixture.run();
        let paths = fixture.tuples("path");
        assert_eq!(paths.len(), 2);
        let pathvars = fixture.tuples("pathvar");
        assert_eq!(pathvars.len(), 2);
        // Entities are distinct per binding.
        assert_ne!(paths[0][0], paths[1][0]);
        // Re-running the fixpoint must not mint new entities.
        fixture.run();
        assert_eq!(fixture.tuples("pathvar").len(), 2);
    }

    #[test]
    fn arithmetic_in_heads() {
        let mut fixture = Fixture::new(
            "dist(X, Y, 1) <- link(X, Y).\n\
             dist(X, Y, C + 1) <- link(X, Z), dist(Z, Y, C), C < 10.",
            &[
                ("link", vec![s("a"), s("b")]),
                ("link", vec![s("b"), s("c")]),
                ("link", vec![s("c"), s("d")]),
            ],
        );
        fixture.run();
        let dist = fixture.tuples("dist");
        assert!(dist.contains(&vec![s("a"), s("d"), Value::Int(3)]));
    }

    #[test]
    fn unsafe_rule_rejected() {
        let mut fixture = Fixture::new(
            "out(X, Y) <- link(X, _).",
            &[("link", vec![s("a"), s("b")])],
        );
        let config = EvalConfig::default();
        let mut evaluator = Evaluator {
            relations: &mut fixture.relations,
            schema: &fixture.schema,
            udfs: &fixture.udfs,
            config: &config,
            entity_counter: &mut fixture.entity_counter,
            existential_memo: &mut fixture.memo,
            plan_cache: &mut fixture.plan_cache,
            plan_stats: &fixture.plan_stats,
        };
        // Y is a head existential, so it actually mints an entity — that is
        // allowed.  A truly unsafe head would use an expression over unbound
        // variables; simulate by evaluating a rule with a singleton that is
        // unset.
        let program = parse_program("out(K) <- link(X, _), K = missing[] + 1.").unwrap();
        let rules: Vec<Rule> = program.rules().cloned().collect();
        let result = evaluator.evaluate_rule(&rules, 0, None);
        assert!(result.is_err() || result.unwrap().is_empty());
    }

    #[test]
    fn fixpoint_budget_enforced() {
        let mut fixture = Fixture::new(
            "count(X, C + 1) <- count(X, C).",
            &[("count", vec![s("a"), Value::Int(0)])],
        );
        let config = EvalConfig {
            max_iterations: 50,
            ..EvalConfig::default()
        };
        let mut evaluator = Evaluator {
            relations: &mut fixture.relations,
            schema: &fixture.schema,
            udfs: &fixture.udfs,
            config: &config,
            entity_counter: &mut fixture.entity_counter,
            existential_memo: &mut fixture.memo,
            plan_cache: &mut fixture.plan_cache,
            plan_stats: &fixture.plan_stats,
        };
        let err = evaluator.run(&fixture.rules, &fixture.strata).unwrap_err();
        assert!(matches!(err, DatalogError::FixpointBudget { .. }));
    }
}
