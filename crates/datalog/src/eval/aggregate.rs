//! Aggregation rules (`agg<< C = min(Cx) >>`).
//!
//! An aggregation rule groups the solutions of its body by the non-aggregated
//! head variables and computes one aggregate value per group.  The paper uses
//! this for the path-vector protocol's `bestcost` relation (§7.1).

use super::bindings::{eval_term, Bindings};
use super::exec::{self, EvalOptions};
use super::join::{DeltaRestriction, DeltaTuples, JoinContext};
use super::plan::{PlanStats, RulePlan};
use super::pool::WorkerPool;
use super::runtime_pred_name;
use crate::ast::{AggFunc, Rule, Term};
use crate::error::{DatalogError, Result};
use crate::relation::Relation;
use crate::udf::UdfRegistry;
use crate::value::{Tuple, Value};
use std::collections::HashMap;

/// Evaluate an aggregation rule against the full relations, returning the
/// derived `(predicate, tuple)` pairs.  The caller inserts them with
/// replace-on-key semantics so that improved aggregates supersede stale ones.
pub fn evaluate_agg_rule(
    rule: &Rule,
    relations: &HashMap<String, Relation>,
    udfs: &UdfRegistry,
) -> Result<Vec<(String, Tuple)>> {
    evaluate_agg_rule_with(rule, relations, udfs, None, None)
}

/// Like [`evaluate_agg_rule`] but executing the body with a compiled plan
/// (and recording probe statistics) when one is supplied.
pub fn evaluate_agg_rule_with(
    rule: &Rule,
    relations: &HashMap<String, Relation>,
    udfs: &UdfRegistry,
    plan: Option<&RulePlan>,
    stats: Option<&PlanStats>,
) -> Result<Vec<(String, Tuple)>> {
    evaluate_agg_rule_exec(
        rule,
        relations,
        udfs,
        plan,
        stats,
        &EvalOptions::serial(),
        None,
    )
}

/// Like [`evaluate_agg_rule_with`], additionally sharding the body
/// enumeration across the worker pool when one is configured and the driving
/// relation (the plan's first stored-relation literal) is large enough.
///
/// Each worker folds its shard of the driving tuples into a worker-local
/// group-accumulator map; the maps are merged in shard order.  Every
/// aggregate function the engine supports (`min`, `max`, `sum`, `count`)
/// merges commutatively and associatively, so the merged groups — and hence
/// the derived tuples — are independent of the sharding (asserted against
/// the serial fold in debug builds).
#[allow(clippy::too_many_arguments)]
pub(crate) fn evaluate_agg_rule_exec(
    rule: &Rule,
    relations: &HashMap<String, Relation>,
    udfs: &UdfRegistry,
    plan: Option<&RulePlan>,
    stats: Option<&PlanStats>,
    options: &EvalOptions,
    pool: Option<&WorkerPool>,
) -> Result<Vec<(String, Tuple)>> {
    let agg = rule.agg.as_ref().ok_or_else(|| {
        DatalogError::Eval("evaluate_agg_rule called on a non-aggregate rule".into())
    })?;

    // Group-by variables: every head variable except the aggregation result.
    let mut head_vars: Vec<String> = Vec::new();
    for atom in &rule.head {
        atom.collect_vars(&mut head_vars);
    }
    let group_vars: Vec<String> = head_vars
        .iter()
        .filter(|v| **v != agg.result_var)
        .cloned()
        .collect();

    let groups = match exec::shard_driving_relation(&rule.body, plan, relations, udfs, options) {
        Some((drive, shards)) => {
            if let Some(stats) = stats {
                PlanStats::bump(&stats.parallel_batches);
            }
            let buffers = exec::run_shards(pool, &shards, |shard| {
                if let Some(stats) = stats {
                    PlanStats::bump(&stats.shards_executed);
                }
                let restriction = Some(DeltaRestriction {
                    literal_index: drive,
                    delta: DeltaTuples::Shard(shard),
                });
                fold_groups(
                    rule,
                    plan,
                    restriction,
                    relations,
                    udfs,
                    stats,
                    &group_vars,
                    agg.func,
                    &agg.input_var,
                )
            })?;
            let mut merged: HashMap<Vec<Value>, AggAccumulator> = HashMap::new();
            for buffer in buffers {
                for (key, accumulator) in buffer {
                    match merged.entry(key) {
                        std::collections::hash_map::Entry::Occupied(mut entry) => {
                            entry.get_mut().merge(accumulator)?
                        }
                        std::collections::hash_map::Entry::Vacant(entry) => {
                            entry.insert(accumulator);
                        }
                    }
                }
            }
            #[cfg(debug_assertions)]
            {
                let serial = fold_groups(
                    rule,
                    plan,
                    None,
                    relations,
                    udfs,
                    None,
                    &group_vars,
                    agg.func,
                    &agg.input_var,
                )?;
                debug_assert_eq!(
                    merged, serial,
                    "sharded aggregation diverged from serial for rule `{rule}`"
                );
            }
            merged
        }
        None => {
            if let Some(stats) = stats {
                PlanStats::bump(&stats.serial_batches);
            }
            fold_groups(
                rule,
                plan,
                None,
                relations,
                udfs,
                stats,
                &group_vars,
                agg.func,
                &agg.input_var,
            )?
        }
    };

    // Instantiate the head once per group.
    let mut derived: Vec<(String, Tuple)> = Vec::new();
    for (key, accumulator) in groups {
        let mut solution = Bindings::new();
        for (var, value) in group_vars.iter().zip(key.iter()) {
            solution.bind(var, value.clone());
        }
        solution.bind(&agg.result_var, accumulator.finish()?);
        for atom in &rule.head {
            let pred = runtime_pred_name(&atom.pred)?;
            let mut tuple: Tuple = Vec::with_capacity(atom.terms.len());
            for term in &atom.terms {
                let value = match term {
                    Term::Var(v) => solution.get(v).cloned(),
                    other => eval_term(other, &solution, relations)?,
                };
                match value {
                    Some(v) => tuple.push(v),
                    None => {
                        return Err(DatalogError::Eval(format!(
                            "aggregation head term {term} of {pred} is not bound"
                        )))
                    }
                }
            }
            derived.push((pred, tuple));
        }
    }
    Ok(derived)
}

/// Enumerate the body solutions (optionally restricted to a shard of the
/// driving literal) and fold them into per-group accumulators.
#[allow(clippy::too_many_arguments)]
fn fold_groups(
    rule: &Rule,
    plan: Option<&RulePlan>,
    restriction: Option<DeltaRestriction<'_>>,
    relations: &HashMap<String, Relation>,
    udfs: &UdfRegistry,
    stats: Option<&PlanStats>,
    group_vars: &[String],
    func: AggFunc,
    input_var: &str,
) -> Result<HashMap<Vec<Value>, AggAccumulator>> {
    let ctx = match stats {
        Some(stats) => JoinContext::with_stats(relations, udfs, stats),
        None => JoinContext::new(relations, udfs),
    };
    let mut groups: HashMap<Vec<Value>, AggAccumulator> = HashMap::new();
    let mut bindings = Bindings::new();
    let mut fold = |b: &Bindings| {
        let mut key: Vec<Value> = Vec::with_capacity(group_vars.len());
        for var in group_vars {
            match b.get(var) {
                Some(v) => key.push(v.clone()),
                None => {
                    return Err(DatalogError::Eval(format!(
                        "aggregation group variable {var} is not bound by the rule body"
                    )))
                }
            }
        }
        let input = match func {
            AggFunc::Count => Value::Int(1),
            _ => b.get(input_var).cloned().ok_or_else(|| {
                DatalogError::Eval(format!(
                    "aggregation input variable {input_var} is not bound by the rule body"
                ))
            })?,
        };
        groups
            .entry(key)
            .or_insert_with(|| AggAccumulator::new(func))
            .add(&input)?;
        Ok(())
    };
    match plan {
        Some(plan) => ctx.join_planned(&rule.body, plan, restriction, &mut bindings, &mut fold)?,
        None => ctx.join(&rule.body, restriction, &mut bindings, &mut fold)?,
    }
    Ok(groups)
}

/// Accumulator for one aggregation group.
#[derive(Debug, Clone, PartialEq)]
struct AggAccumulator {
    func: AggFunc,
    current: Option<Value>,
    count: i64,
    sum: i64,
}

impl AggAccumulator {
    fn new(func: AggFunc) -> Self {
        AggAccumulator {
            func,
            current: None,
            count: 0,
            sum: 0,
        }
    }

    fn add(&mut self, value: &Value) -> Result<()> {
        self.count += 1;
        match self.func {
            AggFunc::Count => {}
            AggFunc::Sum => {
                let v = value.as_int().ok_or_else(|| {
                    DatalogError::Eval(format!("sum aggregation over non-integer value {value}"))
                })?;
                self.sum = self.sum.checked_add(v).ok_or_else(|| {
                    DatalogError::Eval("integer overflow in sum aggregation".into())
                })?;
            }
            AggFunc::Min => match &self.current {
                Some(existing) if existing.total_cmp(value).is_le() => {}
                _ => self.current = Some(value.clone()),
            },
            AggFunc::Max => match &self.current {
                Some(existing) if existing.total_cmp(value).is_ge() => {}
                _ => self.current = Some(value.clone()),
            },
        }
        Ok(())
    }

    /// Combine another shard's accumulator for the same group into this one.
    /// Commutative and associative for every supported function, which is
    /// what makes the sharded fold order-independent.
    fn merge(&mut self, other: AggAccumulator) -> Result<()> {
        debug_assert_eq!(
            self.func, other.func,
            "merging accumulators of different functions"
        );
        self.count += other.count;
        match self.func {
            AggFunc::Count => {}
            AggFunc::Sum => {
                self.sum = self.sum.checked_add(other.sum).ok_or_else(|| {
                    DatalogError::Eval("integer overflow in sum aggregation".into())
                })?;
            }
            AggFunc::Min => {
                if let Some(value) = other.current {
                    match &self.current {
                        Some(existing) if existing.total_cmp(&value).is_le() => {}
                        _ => self.current = Some(value),
                    }
                }
            }
            AggFunc::Max => {
                if let Some(value) = other.current {
                    match &self.current {
                        Some(existing) if existing.total_cmp(&value).is_ge() => {}
                        _ => self.current = Some(value),
                    }
                }
            }
        }
        Ok(())
    }

    fn finish(self) -> Result<Value> {
        match self.func {
            AggFunc::Count => Ok(Value::Int(self.count)),
            AggFunc::Sum => Ok(Value::Int(self.sum)),
            AggFunc::Min | AggFunc::Max => self.current.ok_or_else(|| {
                DatalogError::Eval("min/max aggregation over an empty group".into())
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_rule;

    fn relations_with(facts: &[(&str, Vec<Value>)]) -> HashMap<String, Relation> {
        let mut relations: HashMap<String, Relation> = HashMap::new();
        for (pred, tuple) in facts {
            relations
                .entry(pred.to_string())
                .or_insert_with(|| Relation::new(*pred, None))
                .insert(tuple.clone())
                .unwrap();
        }
        relations
    }

    fn s(v: &str) -> Value {
        Value::str(v)
    }

    #[test]
    fn min_and_max() {
        let relations = relations_with(&[
            ("cost", vec![s("a"), s("b"), Value::Int(5)]),
            ("cost", vec![s("a"), s("b"), Value::Int(3)]),
            ("cost", vec![s("a"), s("c"), Value::Int(9)]),
        ]);
        let udfs = UdfRegistry::new();
        let rule = parse_rule("best(X, Y, C) <- agg<< C = min(Cx) >> cost(X, Y, Cx).").unwrap();
        let mut derived = evaluate_agg_rule(&rule, &relations, &udfs).unwrap();
        derived.sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));
        assert_eq!(derived.len(), 2);
        assert!(derived.contains(&("best".to_string(), vec![s("a"), s("b"), Value::Int(3)])));
        assert!(derived.contains(&("best".to_string(), vec![s("a"), s("c"), Value::Int(9)])));

        let rule = parse_rule("worst(X, Y, C) <- agg<< C = max(Cx) >> cost(X, Y, Cx).").unwrap();
        let derived = evaluate_agg_rule(&rule, &relations, &udfs).unwrap();
        assert!(derived.contains(&("worst".to_string(), vec![s("a"), s("b"), Value::Int(5)])));
    }

    #[test]
    fn count_and_sum() {
        let relations = relations_with(&[
            ("sale", vec![s("store1"), Value::Int(10)]),
            ("sale", vec![s("store1"), Value::Int(20)]),
            ("sale", vec![s("store2"), Value::Int(7)]),
        ]);
        let udfs = UdfRegistry::new();
        let rule = parse_rule("total(S, T) <- agg<< T = sum(V) >> sale(S, V).").unwrap();
        let derived = evaluate_agg_rule(&rule, &relations, &udfs).unwrap();
        assert!(derived.contains(&("total".to_string(), vec![s("store1"), Value::Int(30)])));
        assert!(derived.contains(&("total".to_string(), vec![s("store2"), Value::Int(7)])));

        let rule = parse_rule("howmany(S, N) <- agg<< N = count(V) >> sale(S, V).").unwrap();
        let derived = evaluate_agg_rule(&rule, &relations, &udfs).unwrap();
        assert!(derived.contains(&("howmany".to_string(), vec![s("store1"), Value::Int(2)])));
    }

    #[test]
    fn functional_head_syntax() {
        let relations = relations_with(&[
            ("path3", vec![s("me"), s("n2"), Value::Int(4)]),
            ("path3", vec![s("me"), s("n2"), Value::Int(2)]),
        ]);
        let udfs = UdfRegistry::new();
        let rule =
            parse_rule("bestcost[Me, N] = C <- agg<< C = min(Cx) >> path3(Me, N, Cx).").unwrap();
        let derived = evaluate_agg_rule(&rule, &relations, &udfs).unwrap();
        assert_eq!(
            derived,
            vec![(
                "bestcost".to_string(),
                vec![s("me"), s("n2"), Value::Int(2)]
            )]
        );
    }

    #[test]
    fn empty_body_produces_nothing() {
        let relations = relations_with(&[]);
        let udfs = UdfRegistry::new();
        let rule = parse_rule("best(X, C) <- agg<< C = min(Cx) >> cost(X, Cx).").unwrap();
        let derived = evaluate_agg_rule(&rule, &relations, &udfs).unwrap();
        assert!(derived.is_empty());
    }

    #[test]
    fn sum_over_strings_is_error() {
        let relations = relations_with(&[("sale", vec![s("a"), s("oops")])]);
        let udfs = UdfRegistry::new();
        let rule = parse_rule("total(S, T) <- agg<< T = sum(V) >> sale(S, V).").unwrap();
        assert!(evaluate_agg_rule(&rule, &relations, &udfs).is_err());
    }

    #[test]
    fn non_agg_rule_rejected() {
        let relations = relations_with(&[]);
        let udfs = UdfRegistry::new();
        let rule = parse_rule("a(X) <- b(X).").unwrap();
        assert!(evaluate_agg_rule(&rule, &relations, &udfs).is_err());
    }
}
