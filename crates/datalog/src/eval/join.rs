//! Join execution over body literals with binding propagation.
//!
//! The join is the workhorse of both rule evaluation and constraint checking:
//! given a sequence of body literals and an initial substitution, it
//! enumerates every satisfying extension and invokes a callback per solution.
//!
//! Execution is driven by a [`RulePlan`]: an ordered list of steps, each
//! naming a body literal and (for stored-relation literals) the bound-column
//! signature to probe a secondary index with.  [`JoinContext::join`] runs the
//! trivial textual-order plan (used by constraint checking and the naive
//! evaluation mode); [`JoinContext::join_planned`] runs a compiled plan with
//! index probes.
//!
//! Literal kinds handled:
//!
//! * positive atoms over stored relations (optionally restricted to a delta
//!   set for semi-naïve evaluation), executed as an index probe when the
//!   plan provides a signature and the relation has that index, falling back
//!   to a full scan otherwise,
//! * positive atoms over built-in primitive types (`int(X)`, `string(X)`, …)
//!   which type-check an already-bound value,
//! * positive atoms over user-defined functions,
//! * negated atoms (stratified negation with a ∄ semantics over unbound
//!   positions), probing an index when one exists for the pattern,
//! * comparisons, where `Var = ground-term` doubles as an assignment.

use super::bindings::{eval_term, match_tuple, Bindings};
use super::plan::{PlanStats, PlanStep, RulePlan};
use super::runtime_pred_name;
use crate::ast::{Atom, CmpOp, Literal, Term};
use crate::error::{DatalogError, Result};
use crate::relation::{ColumnSet, Relation};
use crate::schema::BUILTIN_TYPES;
use crate::udf::UdfRegistry;
use crate::value::{Tuple, Value};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::AtomicU64;

/// The driving tuples of a [`DeltaRestriction`]: either an owned delta set
/// (semi-naïve deltas, DRed frontiers, constraint-check deltas) or a borrowed
/// shard of tuple references — the parallel executor's per-worker view, which
/// costs no copying or re-hashing of the driving tuples.
#[derive(Debug, Clone, Copy)]
pub enum DeltaTuples<'a> {
    /// A delta set owned by the evaluation state.
    Set(&'a HashSet<Tuple>),
    /// A borrowed shard: references into a delta set or a relation arena.
    Shard(&'a [&'a Tuple]),
}

impl<'a> DeltaTuples<'a> {
    /// Number of driving tuples.
    pub fn len(&self) -> usize {
        match self {
            DeltaTuples::Set(set) => set.len(),
            DeltaTuples::Shard(shard) => shard.len(),
        }
    }

    /// True when there is nothing to drive on.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<'a> From<&'a HashSet<Tuple>> for DeltaTuples<'a> {
    fn from(set: &'a HashSet<Tuple>) -> Self {
        DeltaTuples::Set(set)
    }
}

/// A restriction of one body literal to a delta set (semi-naïve evaluation).
#[derive(Debug, Clone, Copy)]
pub struct DeltaRestriction<'a> {
    /// Index of the body literal that must match a delta tuple.
    pub literal_index: usize,
    /// The delta tuples of that literal's predicate.
    pub delta: DeltaTuples<'a>,
}

/// Join context: the relations and UDFs visible to the evaluation.
pub struct JoinContext<'a> {
    pub relations: &'a HashMap<String, Relation>,
    pub udfs: &'a UdfRegistry,
    stats: Option<&'a PlanStats>,
}

impl<'a> JoinContext<'a> {
    /// Create a join context.
    pub fn new(relations: &'a HashMap<String, Relation>, udfs: &'a UdfRegistry) -> Self {
        JoinContext {
            relations,
            udfs,
            stats: None,
        }
    }

    /// Create a join context that records probe/scan statistics.
    pub fn with_stats(
        relations: &'a HashMap<String, Relation>,
        udfs: &'a UdfRegistry,
        stats: &'a PlanStats,
    ) -> Self {
        JoinContext {
            relations,
            udfs,
            stats: Some(stats),
        }
    }

    fn bump(&self, pick: impl Fn(&PlanStats) -> &AtomicU64) {
        if let Some(stats) = self.stats {
            PlanStats::bump(pick(stats));
        }
    }

    /// Enumerate all solutions of `literals` in textual order starting from
    /// `bindings`, invoking `callback` once per solution.
    pub fn join<F>(
        &self,
        literals: &[Literal],
        delta: Option<DeltaRestriction<'_>>,
        bindings: &mut Bindings,
        callback: &mut F,
    ) -> Result<()>
    where
        F: FnMut(&Bindings) -> Result<()>,
    {
        let steps = RulePlan::textual(literals.len()).order;
        self.join_steps(literals, &steps, 0, delta, bindings, callback)
    }

    /// Enumerate all solutions following a compiled plan.
    pub fn join_planned<F>(
        &self,
        literals: &[Literal],
        plan: &RulePlan,
        delta: Option<DeltaRestriction<'_>>,
        bindings: &mut Bindings,
        callback: &mut F,
    ) -> Result<()>
    where
        F: FnMut(&Bindings) -> Result<()>,
    {
        debug_assert_eq!(plan.order.len(), literals.len());
        self.join_steps(literals, &plan.order, 0, delta, bindings, callback)
    }

    fn join_steps<F>(
        &self,
        literals: &[Literal],
        steps: &[PlanStep],
        position: usize,
        delta: Option<DeltaRestriction<'_>>,
        bindings: &mut Bindings,
        callback: &mut F,
    ) -> Result<()>
    where
        F: FnMut(&Bindings) -> Result<()>,
    {
        if position == steps.len() {
            return callback(bindings);
        }
        let step = &steps[position];
        match &literals[step.literal] {
            Literal::Pos(atom) => self.join_positive(
                literals, steps, position, atom, step.probe, delta, bindings, callback,
            ),
            Literal::Neg(atom) => {
                if self.negation_holds(atom, bindings)? {
                    self.join_steps(literals, steps, position + 1, delta, bindings, callback)
                } else {
                    Ok(())
                }
            }
            Literal::Cmp(lhs, op, rhs) => self.join_comparison(
                literals, steps, position, lhs, *op, rhs, delta, bindings, callback,
            ),
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn join_positive<F>(
        &self,
        literals: &[Literal],
        steps: &[PlanStep],
        position: usize,
        atom: &Atom,
        probe: Option<ColumnSet>,
        delta: Option<DeltaRestriction<'_>>,
        bindings: &mut Bindings,
        callback: &mut F,
    ) -> Result<()>
    where
        F: FnMut(&Bindings) -> Result<()>,
    {
        let name = runtime_pred_name(&atom.pred)?;

        // Built-in primitive type check, e.g. `int(C)` from a type declaration.
        if BUILTIN_TYPES.contains(&name.as_str()) && atom.terms.len() == 1 {
            let value = eval_term(&atom.terms[0], bindings, self.relations)?;
            return match value {
                Some(v) if v.primitive_type() == name => {
                    self.join_steps(literals, steps, position + 1, delta, bindings, callback)
                }
                // An unbound argument to a primitive type check cannot be
                // enumerated; treat as failure of this branch.
                _ => Ok(()),
            };
        }

        // User-defined function.
        if self.udfs.is_udf(&name) {
            let mut pattern: Vec<Option<Value>> = Vec::with_capacity(atom.terms.len());
            for term in &atom.terms {
                pattern.push(match term {
                    Term::Var(v) => bindings.get(v).cloned(),
                    Term::Wildcard => None,
                    other => eval_term(other, bindings, self.relations)?,
                });
            }
            let rows = self
                .udfs
                .call(&name, &pattern)
                .map_err(|message| DatalogError::Udf {
                    function: name.clone(),
                    message,
                })?;
            for row in rows {
                if let Some(newly_bound) = match_tuple(&atom.terms, &row, bindings, self.relations)?
                {
                    let result =
                        self.join_steps(literals, steps, position + 1, delta, bindings, callback);
                    for var in &newly_bound {
                        bindings.unbind(var);
                    }
                    result?;
                }
            }
            return Ok(());
        }

        // Stored relation (possibly restricted to the delta set).
        let use_delta = delta.is_some_and(|d| d.literal_index == steps[position].literal);
        if use_delta {
            let delta_tuples = delta.expect("delta restriction checked above").delta;
            return match delta_tuples {
                DeltaTuples::Set(set) => self.join_delta(
                    literals,
                    steps,
                    position,
                    atom,
                    set.iter(),
                    delta,
                    bindings,
                    callback,
                ),
                DeltaTuples::Shard(shard) => self.join_delta(
                    literals,
                    steps,
                    position,
                    atom,
                    shard.iter().copied(),
                    delta,
                    bindings,
                    callback,
                ),
            };
        }

        let Some(relation) = self.relations.get(&name) else {
            // Unknown / empty relation: no matches.
            return Ok(());
        };
        // Functional fast path: if every key term is ground, look the value up
        // directly instead of scanning.
        if let Some(key_arity) = relation.key_arity() {
            if atom.terms.len() == key_arity + 1 {
                let mut key: Vec<Value> = Vec::with_capacity(key_arity);
                let mut all_ground = true;
                for term in &atom.terms[..key_arity] {
                    match term {
                        Term::Var(v) => match bindings.get(v) {
                            Some(value) => key.push(value.clone()),
                            None => {
                                all_ground = false;
                                break;
                            }
                        },
                        Term::Wildcard => {
                            all_ground = false;
                            break;
                        }
                        other => match eval_term(other, bindings, self.relations)? {
                            Some(value) => key.push(value),
                            None => {
                                all_ground = false;
                                break;
                            }
                        },
                    }
                }
                if all_ground {
                    if let Some(value) = relation.functional_lookup(&key) {
                        self.bump(|s| &s.functional_hits);
                        let mut tuple = key;
                        tuple.push(value.clone());
                        if let Some(newly_bound) =
                            match_tuple(&atom.terms, &tuple, bindings, self.relations)?
                        {
                            let result = self.join_steps(
                                literals,
                                steps,
                                position + 1,
                                delta,
                                bindings,
                                callback,
                            );
                            for var in &newly_bound {
                                bindings.unbind(var);
                            }
                            result?;
                        }
                    }
                    return Ok(());
                }
            }
        }

        // Index probe: evaluate the plan's bound columns and look the key up
        // in the relation's secondary index.  Falls back to a scan when a key
        // term is not ground at runtime (e.g. an unset singleton) or the
        // index is missing.
        if let Some(cols) = probe {
            if let Some(key) = self.probe_key(atom, cols, bindings)? {
                if let Some(ids) = relation.probe(cols, &key) {
                    self.bump(|s| &s.index_probes);
                    for id in ids {
                        let tuple = relation.tuple_by_id(id);
                        if let Some(newly_bound) =
                            match_tuple(&atom.terms, tuple, bindings, self.relations)?
                        {
                            let result = self.join_steps(
                                literals,
                                steps,
                                position + 1,
                                delta,
                                bindings,
                                callback,
                            );
                            for var in &newly_bound {
                                bindings.unbind(var);
                            }
                            result?;
                        }
                    }
                    return Ok(());
                }
            }
        }

        // General scan.  All borrows are shared, so the recursion can run
        // under the live iterator — no snapshot of the relation is taken.
        self.bump(|s| &s.full_scans);
        for tuple in relation.iter() {
            if let Some(newly_bound) = match_tuple(&atom.terms, tuple, bindings, self.relations)? {
                let result =
                    self.join_steps(literals, steps, position + 1, delta, bindings, callback);
                for var in &newly_bound {
                    bindings.unbind(var);
                }
                result?;
            }
        }
        Ok(())
    }

    /// Enumerate the driving tuples of a delta-restricted literal.  Shared by
    /// the owned-set and borrowed-shard delta views so both run identically.
    #[allow(clippy::too_many_arguments)]
    fn join_delta<'t, F>(
        &self,
        literals: &[Literal],
        steps: &[PlanStep],
        position: usize,
        atom: &Atom,
        tuples: impl Iterator<Item = &'t Tuple>,
        delta: Option<DeltaRestriction<'_>>,
        bindings: &mut Bindings,
        callback: &mut F,
    ) -> Result<()>
    where
        F: FnMut(&Bindings) -> Result<()>,
    {
        for tuple in tuples {
            if let Some(newly_bound) = match_tuple(&atom.terms, tuple, bindings, self.relations)? {
                let result =
                    self.join_steps(literals, steps, position + 1, delta, bindings, callback);
                for var in &newly_bound {
                    bindings.unbind(var);
                }
                result?;
            }
        }
        Ok(())
    }

    /// Evaluate the probe key for `atom` on the columns of `cols`.  Returns
    /// `None` when some column's term is not ground under the current
    /// bindings (caller falls back to a scan).
    fn probe_key(
        &self,
        atom: &Atom,
        cols: ColumnSet,
        bindings: &Bindings,
    ) -> Result<Option<Tuple>> {
        let mut key = Vec::with_capacity(cols.count_ones() as usize);
        for (position, term) in atom.terms.iter().enumerate() {
            if position >= 64 || cols & (1 << position) == 0 {
                continue;
            }
            match eval_term(term, bindings, self.relations)? {
                Some(value) => key.push(value),
                None => return Ok(None),
            }
        }
        Ok(Some(key))
    }

    /// `!p(args)` holds when no stored tuple matches the (partially ground)
    /// argument pattern.  Unbound variables and wildcards act as "any value".
    /// Uses a secondary index when one exists for the pattern's signature.
    fn negation_holds(&self, atom: &Atom, bindings: &Bindings) -> Result<bool> {
        let name = runtime_pred_name(&atom.pred)?;
        if self.udfs.is_udf(&name) {
            return Err(DatalogError::Eval(format!(
                "negation over user-defined function {name} is not supported"
            )));
        }
        let Some(relation) = self.relations.get(&name) else {
            return Ok(true);
        };
        let mut pattern: Vec<Option<Value>> = Vec::with_capacity(atom.terms.len());
        for term in &atom.terms {
            pattern.push(match term {
                Term::Var(v) => bindings.get(v).cloned(),
                Term::Wildcard => None,
                other => eval_term(other, bindings, self.relations)?,
            });
        }
        Ok(!relation.matches_any(&pattern))
    }

    #[allow(clippy::too_many_arguments)]
    fn join_comparison<F>(
        &self,
        literals: &[Literal],
        steps: &[PlanStep],
        position: usize,
        lhs: &Term,
        op: CmpOp,
        rhs: &Term,
        delta: Option<DeltaRestriction<'_>>,
        bindings: &mut Bindings,
        callback: &mut F,
    ) -> Result<()>
    where
        F: FnMut(&Bindings) -> Result<()>,
    {
        let lhs_value = eval_term(lhs, bindings, self.relations)?;
        let rhs_value = eval_term(rhs, bindings, self.relations)?;

        // Assignment form: `X = ground` or `ground = X` with X unbound.
        if op == CmpOp::Eq {
            if let (Term::Var(v), None, Some(value)) = (lhs, &lhs_value, &rhs_value) {
                if !bindings.is_bound(v) {
                    bindings.bind(v, value.clone());
                    let result =
                        self.join_steps(literals, steps, position + 1, delta, bindings, callback);
                    bindings.unbind(v);
                    return result;
                }
            }
            if let (Term::Var(v), None, Some(value)) = (rhs, &rhs_value, &lhs_value) {
                if !bindings.is_bound(v) {
                    bindings.bind(v, value.clone());
                    let result =
                        self.join_steps(literals, steps, position + 1, delta, bindings, callback);
                    bindings.unbind(v);
                    return result;
                }
            }
        }

        let (Some(a), Some(b)) = (lhs_value, rhs_value) else {
            return Err(DatalogError::Eval(format!(
                "comparison {lhs} {op} {rhs} has unbound operands"
            )));
        };
        let ordering = a.total_cmp(&b);
        let holds = match op {
            CmpOp::Eq => ordering.is_eq(),
            CmpOp::Ne => !ordering.is_eq(),
            CmpOp::Lt => ordering.is_lt(),
            CmpOp::Le => ordering.is_le(),
            CmpOp::Gt => ordering.is_gt(),
            CmpOp::Ge => ordering.is_ge(),
        };
        if holds {
            self.join_steps(literals, steps, position + 1, delta, bindings, callback)
        } else {
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::plan::compile_body_plan;
    use crate::parser::parse_rule;
    use crate::udf::standard_udfs;

    fn relations_with_edges(edges: &[(&str, &str)]) -> HashMap<String, Relation> {
        let mut relations = HashMap::new();
        let mut rel = Relation::new("link", None);
        for (a, b) in edges {
            rel.insert(vec![Value::str(*a), Value::str(*b)]).unwrap();
        }
        relations.insert("link".to_string(), rel);
        relations
    }

    fn collect_solutions(
        relations: &HashMap<String, Relation>,
        udfs: &UdfRegistry,
        body_source: &str,
        vars: &[&str],
    ) -> Vec<Vec<Value>> {
        let rule = parse_rule(&format!("out(X) <- {body_source}.")).unwrap();
        let ctx = JoinContext::new(relations, udfs);
        let mut results = Vec::new();
        let mut bindings = Bindings::new();
        ctx.join(&rule.body, None, &mut bindings, &mut |b| {
            results.push(
                vars.iter()
                    .map(|v| b.get(v).cloned().unwrap_or(Value::Bool(false)))
                    .collect(),
            );
            Ok(())
        })
        .unwrap();
        results.sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));
        results
    }

    #[test]
    fn simple_join_enumerates_paths() {
        let relations = relations_with_edges(&[("n1", "n2"), ("n2", "n3"), ("n2", "n4")]);
        let udfs = UdfRegistry::new();
        let solutions = collect_solutions(&relations, &udfs, "link(X, Z), link(Z, Y)", &["X", "Y"]);
        assert_eq!(solutions.len(), 2);
        assert!(solutions.contains(&vec![Value::str("n1"), Value::str("n3")]));
        assert!(solutions.contains(&vec![Value::str("n1"), Value::str("n4")]));
    }

    #[test]
    fn planned_join_with_indexes_matches_textual_join() {
        let mut relations = relations_with_edges(&[("n1", "n2"), ("n2", "n3"), ("n2", "n4")]);
        let udfs = UdfRegistry::new();
        let rule = parse_rule("out(X, Y) <- link(X, Z), link(Z, Y).").unwrap();
        let plan = compile_body_plan(&rule.body, None, &relations, &udfs);
        for spec in &plan.ensure {
            relations
                .get_mut(&spec.pred)
                .unwrap()
                .ensure_index(spec.cols);
        }
        let stats = PlanStats::default();
        let ctx = JoinContext::with_stats(&relations, &udfs, &stats);
        let mut results = Vec::new();
        let mut bindings = Bindings::new();
        ctx.join_planned(&rule.body, &plan, None, &mut bindings, &mut |b| {
            results.push(vec![
                b.get("X").cloned().unwrap(),
                b.get("Y").cloned().unwrap(),
            ]);
            Ok(())
        })
        .unwrap();
        results.sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));
        let textual = collect_solutions(&relations, &udfs, "link(X, Z), link(Z, Y)", &["X", "Y"]);
        assert_eq!(results, textual);
        let snap = stats.snapshot();
        assert!(snap.index_probes > 0, "second literal should probe");
    }

    #[test]
    fn comparison_filters_and_assigns() {
        let relations = relations_with_edges(&[("n1", "n2"), ("n2", "n2")]);
        let udfs = UdfRegistry::new();
        let solutions = collect_solutions(&relations, &udfs, "link(X, Y), X != Y", &["X", "Y"]);
        assert_eq!(solutions.len(), 1);
        let solutions = collect_solutions(&relations, &udfs, "link(X, Y), Z = 42", &["Z"]);
        assert_eq!(solutions[0][0], Value::Int(42));
    }

    #[test]
    fn negation_checks_absence() {
        let relations = relations_with_edges(&[("n1", "n2"), ("n2", "n3")]);
        let udfs = UdfRegistry::new();
        let solutions =
            collect_solutions(&relations, &udfs, "link(X, Y), !link(Y, _)", &["X", "Y"]);
        // Only n2 -> n3 has no outgoing link from its target.
        assert_eq!(solutions, vec![vec![Value::str("n2"), Value::str("n3")]]);
    }

    #[test]
    fn udf_calls_bind_outputs() {
        let relations = relations_with_edges(&[("n1", "n2")]);
        let mut udfs = standard_udfs();
        udfs.register("length", |args| {
            let s = crate::udf::require_bound(args, 0, "length")?;
            let len = s.as_str().map(|s| s.len() as i64).ok_or("not a string")?;
            Ok(vec![vec![s, Value::Int(len)]])
        });
        let solutions =
            collect_solutions(&relations, &udfs, "link(X, _), length(X, N)", &["X", "N"]);
        assert_eq!(solutions, vec![vec![Value::str("n1"), Value::Int(2)]]);
    }

    #[test]
    fn builtin_type_check_in_body() {
        let mut relations = relations_with_edges(&[]);
        let mut values = Relation::new("v", None);
        values.insert(vec![Value::Int(3)]).unwrap();
        values.insert(vec![Value::str("x")]).unwrap();
        relations.insert("v".to_string(), values);
        let udfs = UdfRegistry::new();
        let solutions = collect_solutions(&relations, &udfs, "v(X), int(X)", &["X"]);
        assert_eq!(solutions, vec![vec![Value::Int(3)]]);
    }

    #[test]
    fn functional_lookup_fast_path() {
        let mut relations = HashMap::new();
        let mut rel = Relation::new("bestcost", Some(2));
        rel.insert(vec![Value::str("a"), Value::str("b"), Value::Int(4)])
            .unwrap();
        relations.insert("bestcost".to_string(), rel);
        let udfs = UdfRegistry::new();
        let rule = parse_rule("out(C) <- bestcost[X, Y] = C, X = a, Y = b.").unwrap();
        // Reorder so the key is bound before the lookup: use explicit constants instead.
        let rule2 = parse_rule("out(C) <- bestcost[a, b] = C.").unwrap();
        let ctx = JoinContext::new(&relations, &udfs);
        let mut results = Vec::new();
        let mut bindings = Bindings::new();
        ctx.join(&rule2.body, None, &mut bindings, &mut |b| {
            results.push(b.get("C").cloned().unwrap());
            Ok(())
        })
        .unwrap();
        assert_eq!(results, vec![Value::Int(4)]);
        // The unbound-key form still works by scanning.
        let mut results = Vec::new();
        let mut bindings = Bindings::new();
        ctx.join(&rule.body, None, &mut bindings, &mut |b| {
            results.push(b.get("C").cloned().unwrap());
            Ok(())
        })
        .unwrap();
        assert_eq!(results, vec![Value::Int(4)]);
        // The planner hoists the assignments, so the planned execution takes
        // the functional fast path instead of scanning.
        let plan = compile_body_plan(&rule.body, None, &relations, &udfs);
        let stats = PlanStats::default();
        let ctx = JoinContext::with_stats(&relations, &udfs, &stats);
        let mut results = Vec::new();
        let mut bindings = Bindings::new();
        ctx.join_planned(&rule.body, &plan, None, &mut bindings, &mut |b| {
            results.push(b.get("C").cloned().unwrap());
            Ok(())
        })
        .unwrap();
        assert_eq!(results, vec![Value::Int(4)]);
        let snap = stats.snapshot();
        assert_eq!(snap.functional_hits, 1);
        assert_eq!(snap.full_scans, 0);
    }

    #[test]
    fn delta_restriction_limits_matches() {
        let relations = relations_with_edges(&[("n1", "n2"), ("n2", "n3")]);
        let udfs = UdfRegistry::new();
        let rule = parse_rule("out(X, Y) <- link(X, Y).").unwrap();
        let ctx = JoinContext::new(&relations, &udfs);
        let delta: HashSet<Tuple> = [vec![Value::str("n2"), Value::str("n3")]]
            .into_iter()
            .collect();
        let mut results = Vec::new();
        let mut bindings = Bindings::new();
        ctx.join(
            &rule.body,
            Some(DeltaRestriction {
                literal_index: 0,
                delta: DeltaTuples::Set(&delta),
            }),
            &mut bindings,
            &mut |b| {
                results.push(b.get("X").cloned().unwrap());
                Ok(())
            },
        )
        .unwrap();
        assert_eq!(results, vec![Value::str("n2")]);
    }

    #[test]
    fn unbound_comparison_is_error() {
        let relations = relations_with_edges(&[("n1", "n2")]);
        let udfs = UdfRegistry::new();
        let rule = parse_rule("out(X) <- link(X, _), X < Undefined.").unwrap();
        let ctx = JoinContext::new(&relations, &udfs);
        let mut bindings = Bindings::new();
        let result = ctx.join(&rule.body, None, &mut bindings, &mut |_| Ok(()));
        assert!(result.is_err());
        // The planner cannot make `Undefined` bindable either: the planned
        // execution reports the same error instead of silently dropping it.
        let plan = compile_body_plan(&rule.body, None, &relations, &udfs);
        let mut bindings = Bindings::new();
        let result = ctx.join_planned(&rule.body, &plan, None, &mut bindings, &mut |_| Ok(()));
        assert!(result.is_err());
    }
}
