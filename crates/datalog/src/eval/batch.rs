//! Batch-at-a-time rule execution over interned id columns.
//!
//! The tuple-at-a-time join in [`super::join`] materializes a [`Bindings`]
//! map per solution and compares [`crate::value::Value`]s at every probe.
//! For the common rule shape — positive stored-relation literals with
//! variable/constant terms and a head built from body variables — none of
//! that is necessary: every value is already a dense `u32` dictionary id
//! inside the relations' column groups, so the whole join can run as
//! integer-column operations and only *new* tuples are ever rehydrated into
//! `Value` rows (at insert, by [`crate::relation::Relation::insert_ids`]).
//!
//! ## Two phases, one thread contract
//!
//! [`compile_batch`] runs **only on the evaluator thread**: it is the one
//! place the batch path interns (head constants), which keeps dictionary id
//! assignment a pure function of the operation sequence — independent of
//! the worker count ([`crate::intern`] module docs).  [`execute_batch`] is
//! read-only and safe to run from pool workers.
//!
//! ## Determinism
//!
//! The executor's output is canonicalized — per head predicate, id rows are
//! sorted and deduplicated — so the result is independent of frame order,
//! sharding, and cache hits.  Since ids are worker-count-independent, so is
//! the id-sorted insertion order downstream.  Debug builds additionally
//! assert the rehydrated output equals the tuple-at-a-time enumeration
//! (`Evaluator::evaluate_round`).

use super::exec::EvalOptions;
use super::plan::{PlanStats, RulePlan};
use super::pool::WorkerPool;
use super::runtime_pred_name;
use crate::ast::{Literal, Rule, Term};
use crate::error::{DatalogError, Result};
use crate::intern::{fnv_ids, Interner, PassBuild};
use crate::relation::Relation;
use crate::schema::BUILTIN_TYPES;
use crate::udf::UdfRegistry;
use crate::value::Tuple;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// One tuple as dictionary ids (scratch rows only; bulk data travels as
/// [`IdBatch`]).
pub(crate) type IdRow = Vec<u32>;

/// Fixed-stride, densely packed id rows — the batch plane's unit of bulk
/// data.  `data` holds `rows * stride` ids row-major in one contiguous
/// buffer, so moving a batch between pipeline stages (or across the worker
/// pool) costs zero per-row allocations and sorts compare adjacent memory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct IdBatch {
    stride: usize,
    rows: usize,
    data: Vec<u32>,
}

impl IdBatch {
    pub(crate) fn new(stride: usize) -> IdBatch {
        IdBatch {
            stride,
            rows: 0,
            data: Vec::new(),
        }
    }

    pub(crate) fn rows(&self) -> usize {
        self.rows
    }

    pub(crate) fn push_row(&mut self, row: &[u32]) {
        debug_assert_eq!(row.len(), self.stride);
        self.data.extend_from_slice(row);
        self.rows += 1;
    }

    pub(crate) fn row(&self, index: usize) -> &[u32] {
        &self.data[index * self.stride..(index + 1) * self.stride]
    }

    pub(crate) fn iter(&self) -> impl Iterator<Item = &[u32]> + '_ {
        (0..self.rows).map(move |index| self.row(index))
    }

    fn append(&mut self, other: &IdBatch) {
        debug_assert_eq!(self.stride, other.stride);
        self.data.extend_from_slice(&other.data);
        self.rows += other.rows;
    }

    /// Sort rows lexicographically and drop duplicates, in one pass over an
    /// index permutation (the row data itself moves once, into the rebuilt
    /// buffer).  Strides 1 and 2 sort packed integers instead — the
    /// lexicographic order of a `[u32]` row equals the numeric order of its
    /// big-endian packing.
    fn sort_dedup(&mut self) {
        if self.stride == 0 {
            self.rows = self.rows.min(1);
            return;
        }
        if self.stride == 1 {
            self.data.sort_unstable();
            self.data.dedup();
            self.rows = self.data.len();
            return;
        }
        if self.stride == 2 {
            let mut packed: Vec<u64> = self
                .data
                .chunks_exact(2)
                .map(|pair| (u64::from(pair[0]) << 32) | u64::from(pair[1]))
                .collect();
            packed.sort_unstable();
            packed.dedup();
            self.data.clear();
            for value in &packed {
                self.data.push((value >> 32) as u32);
                self.data.push(*value as u32);
            }
            self.rows = packed.len();
            return;
        }
        let stride = self.stride;
        let data = &self.data;
        let mut order: Vec<u32> = (0..self.rows as u32).collect();
        order.sort_unstable_by(|&a, &b| {
            data[a as usize * stride..][..stride].cmp(&data[b as usize * stride..][..stride])
        });
        let mut out: Vec<u32> = Vec::with_capacity(data.len());
        let mut kept = 0usize;
        for &index in &order {
            let row = &data[index as usize * stride..][..stride];
            if kept > 0 && &out[(kept - 1) * stride..][..stride] == row {
                continue;
            }
            out.extend_from_slice(row);
            kept += 1;
        }
        self.data = out;
        self.rows = kept;
    }
}

/// What one literal position constrains or produces.
#[derive(Debug, Clone, Copy)]
enum PosSpec {
    /// Must equal this interned constant.
    Const(u32),
    /// Must equal the frame column (a variable bound by an earlier step).
    Bound(usize),
    /// First occurrence of a variable: binds a fresh frame column.
    Fresh,
    /// Repeated fresh variable within the same literal: must equal the
    /// candidate's own value at the first-occurrence position.
    Dup(usize),
    /// Wildcard: unconstrained.
    Free,
}

/// Where a probe-key / head-row component comes from.
#[derive(Debug, Clone, Copy)]
enum IdSrc {
    Frame(usize),
    Const(u32),
}

struct ProbeExec {
    cols: u64,
    /// Key components in ascending bit order of `cols`.
    key: Vec<IdSrc>,
    /// True when `cols` covers every `Const`/`Bound` position, so matches
    /// depend only on the key and per-key caching is sound.
    cacheable: bool,
}

struct StepExec {
    pred: String,
    arity: usize,
    positions: Vec<PosSpec>,
    /// Literal positions that bind fresh frame columns, in order; position
    /// `fresh[i]` binds frame column `base + i`.
    fresh: Vec<usize>,
    probe: Option<ProbeExec>,
}

struct HeadExec {
    pred: String,
    srcs: Vec<IdSrc>,
}

/// A rule body compiled to id-space batch steps.
pub(crate) struct BatchJob {
    steps: Vec<StepExec>,
    heads: Vec<HeadExec>,
    /// Delta rows driving step 0, pre-encoded on the evaluator thread and
    /// pre-filtered to step 0's arity.
    delta_rows: Option<IdBatch>,
    /// A body constant is absent from the dictionary: no stored tuple can
    /// match, so the derivation is provably empty.
    impossible: bool,
}

/// Compile `rule` for batch execution, or `None` when the body falls outside
/// the batch-executable shape (negation, comparisons, UDFs, builtin type
/// checks, expression terms, singleton refs, head existentials, a relation
/// on a foreign dictionary, or a delta literal the plan did not pin first).
///
/// Must run on the evaluator thread: head constants are interned here.
#[allow(clippy::too_many_arguments)]
pub(crate) fn compile_batch(
    rule: &Rule,
    plan: &RulePlan,
    delta: Option<(usize, &HashSet<Tuple>)>,
    relations: &HashMap<String, Relation>,
    udfs: &UdfRegistry,
    interner: &Arc<Interner>,
) -> Option<BatchJob> {
    if rule.agg.is_some() || plan.order.is_empty() {
        return None;
    }
    if let Some((index, _)) = delta {
        if plan.order[0].literal != index {
            return None;
        }
    }

    let mut vars: HashMap<String, usize> = HashMap::new();
    let mut impossible = false;
    let mut steps = Vec::with_capacity(plan.order.len());
    for step in &plan.order {
        let Literal::Pos(atom) = &rule.body[step.literal] else {
            return None;
        };
        let pred = runtime_pred_name(&atom.pred).ok()?;
        if udfs.is_udf(&pred) || (BUILTIN_TYPES.contains(&pred.as_str()) && atom.terms.len() == 1) {
            return None;
        }
        if let Some(relation) = relations.get(&pred) {
            if !Arc::ptr_eq(relation.interner(), interner) {
                return None;
            }
        }
        let mut positions = Vec::with_capacity(atom.terms.len());
        let mut fresh: Vec<usize> = Vec::new();
        let mut local: HashMap<&str, usize> = HashMap::new();
        for (pos, term) in atom.terms.iter().enumerate() {
            let spec = match term {
                Term::Wildcard => PosSpec::Free,
                Term::Const(value) => match interner.try_id(value) {
                    Some(id) => PosSpec::Const(id),
                    None => {
                        impossible = true;
                        PosSpec::Free
                    }
                },
                Term::Var(name) => {
                    if let Some(&col) = vars.get(name.as_str()) {
                        PosSpec::Bound(col)
                    } else if let Some(&first) = local.get(name.as_str()) {
                        PosSpec::Dup(first)
                    } else {
                        local.insert(name, pos);
                        fresh.push(pos);
                        PosSpec::Fresh
                    }
                }
                _ => return None,
            };
            positions.push(spec);
        }
        let base = vars.len();
        for (offset, &pos) in fresh.iter().enumerate() {
            if let Term::Var(name) = &atom.terms[pos] {
                vars.insert(name.clone(), base + offset);
            }
        }

        let is_delta = delta.map(|(index, _)| index) == Some(step.literal);
        let probe = match step.probe {
            Some(cols) if cols != 0 && !is_delta => {
                let mut key = Vec::new();
                let mut coverable = true;
                for (pos, spec) in positions.iter().enumerate() {
                    if pos >= 64 || cols & (1u64 << pos) == 0 {
                        continue;
                    }
                    match spec {
                        PosSpec::Const(id) => key.push(IdSrc::Const(*id)),
                        PosSpec::Bound(col) => key.push(IdSrc::Frame(*col)),
                        // A probe bit can land on a position the key cannot
                        // cover: an intra-literal duplicate, or a constant
                        // missing from the dictionary.  Scan instead.
                        _ => {
                            coverable = false;
                            break;
                        }
                    }
                }
                if coverable {
                    let cacheable = positions.iter().enumerate().all(|(pos, spec)| match spec {
                        PosSpec::Const(_) | PosSpec::Bound(_) => {
                            pos < 64 && cols & (1u64 << pos) != 0
                        }
                        _ => true,
                    });
                    Some(ProbeExec {
                        cols,
                        key,
                        cacheable,
                    })
                } else {
                    None
                }
            }
            _ => None,
        };
        steps.push(StepExec {
            pred,
            arity: atom.terms.len(),
            positions,
            fresh,
            probe,
        });
    }

    let mut heads = Vec::with_capacity(rule.head.len());
    for atom in &rule.head {
        let pred = runtime_pred_name(&atom.pred).ok()?;
        let mut srcs = Vec::with_capacity(atom.terms.len());
        for term in &atom.terms {
            match term {
                Term::Var(name) => srcs.push(IdSrc::Frame(*vars.get(name.as_str())?)),
                Term::Const(value) => srcs.push(IdSrc::Const(interner.intern(value))),
                _ => return None,
            }
        }
        heads.push(HeadExec { pred, srcs });
    }

    // Encode the delta rows up front (still on the evaluator thread).  Delta
    // tuples were inserted into relations, so their values are already
    // interned; a miss means the set is not encodable and the tuple path
    // must run instead.
    let delta_rows = match delta {
        Some((_, tuples)) => {
            let arity = steps[0].arity;
            let mut batch = IdBatch::new(arity);
            let mut ids = Vec::new();
            for tuple in tuples {
                if !interner.try_row(tuple, &mut ids) {
                    return None;
                }
                // Rows of a different arity can never match step 0.
                if ids.len() == arity {
                    batch.push_row(&ids);
                }
            }
            Some(batch)
        }
        None => None,
    };

    Some(BatchJob {
        steps,
        heads,
        delta_rows,
        impossible,
    })
}

/// A columnar binding frame: one `u32` column per bound variable.
struct Frame {
    cols: Vec<Vec<u32>>,
    len: usize,
}

impl Frame {
    fn unit() -> Frame {
        Frame {
            cols: Vec::new(),
            len: 1,
        }
    }
}

/// Execute a compiled batch job and return canonicalized (sorted,
/// deduplicated) id rows per head predicate.  Read-only over `relations`;
/// shards the driving rows across `pool` when they clear the configured
/// threshold.
pub(crate) fn execute_batch(
    job: &BatchJob,
    relations: &HashMap<String, Relation>,
    stats: &PlanStats,
    options: &EvalOptions,
    pool: Option<&WorkerPool>,
) -> Result<Vec<(String, IdBatch)>> {
    if job.impossible || job.steps.is_empty() {
        return Ok(Vec::new());
    }

    // Materialize the driving rows only when sharding; the serial path
    // streams step 0 straight from the column group (or the delta rows).
    let driving_len = match &job.delta_rows {
        Some(batch) => batch.rows(),
        None => relations
            .get(&job.steps[0].pred)
            .and_then(|r| r.group(job.steps[0].arity))
            .map(|g| g.rows())
            .unwrap_or(0),
    };
    let want_shards = options.parallel_enabled()
        && pool.is_some()
        && job.steps[0].probe.is_none()
        && driving_len >= options.parallel_threshold;

    if want_shards {
        let pool = pool.expect("checked above");
        let workers = options.workers;
        let arity = job.steps[0].arity;
        let mut shards: Vec<IdBatch> = (0..workers).map(|_| IdBatch::new(arity)).collect();
        match &job.delta_rows {
            Some(batch) => {
                for row in batch.iter() {
                    shards[shard_of_ids(row, workers)].push_row(row);
                }
            }
            None => {
                if let Some(group) = relations
                    .get(&job.steps[0].pred)
                    .and_then(|r| r.group(arity))
                {
                    let mut row = Vec::with_capacity(group.arity());
                    for index in 0..group.rows() {
                        row.clear();
                        for col in 0..group.arity() {
                            row.push(group.col(col)[index]);
                        }
                        shards[shard_of_ids(&row, workers)].push_row(&row);
                    }
                }
            }
        }
        let occupied: Vec<IdBatch> = shards.into_iter().filter(|s| s.rows() > 0).collect();
        if occupied.len() > 1 {
            PlanStats::bump(&stats.parallel_batches);
            let tasks: Vec<_> = occupied
                .iter()
                .map(|shard| {
                    move || {
                        PlanStats::bump(&stats.shards_executed);
                        run_steps(job, relations, Some(shard), stats)
                    }
                })
                .collect();
            let mut merged: Vec<(String, IdBatch)> = Vec::new();
            for result in pool.execute(tasks) {
                let buffer = result
                    .map_err(|_| DatalogError::Eval("evaluation worker panicked".into()))??;
                merged.extend(buffer);
            }
            return Ok(canonicalize(merged));
        }
        // Everything hashed into one shard: fall through to the serial path.
    }

    PlanStats::bump(&stats.serial_batches);
    let rows = run_steps(job, relations, job.delta_rows.as_ref(), stats)?;
    Ok(canonicalize(rows))
}

/// Content hash of an id row, for sharding (worker-count dependent bucketing
/// is fine: the output is canonicalized).
fn shard_of_ids(row: &[u32], workers: usize) -> usize {
    (fnv_ids(row.len() as u64, row.iter().copied()) % workers as u64) as usize
}

/// Run the step pipeline over one driving set (`driving` overrides step 0's
/// scan; `None` streams the full column group) and project the heads.
fn run_steps(
    job: &BatchJob,
    relations: &HashMap<String, Relation>,
    driving: Option<&IdBatch>,
    stats: &PlanStats,
) -> Result<Vec<(String, IdBatch)>> {
    let mut frame = Frame::unit();
    for (index, step) in job.steps.iter().enumerate() {
        let source = if index == 0 { driving } else { None };
        frame = extend_frame(&frame, step, source, relations, stats)?;
        if frame.len == 0 {
            return Ok(Vec::new());
        }
    }

    let mut out: Vec<(String, IdBatch)> = Vec::with_capacity(job.heads.len());
    for head in &job.heads {
        let mut batch = IdBatch::new(head.srcs.len());
        batch.data.reserve(frame.len * head.srcs.len());
        for i in 0..frame.len {
            for src in &head.srcs {
                batch.data.push(match src {
                    IdSrc::Frame(col) => frame.cols[*col][i],
                    IdSrc::Const(id) => *id,
                });
            }
        }
        batch.rows = frame.len;
        out.push((head.pred.clone(), batch));
    }
    Ok(out)
}

/// Join one step against the frame, producing the extended frame.
fn extend_frame(
    frame: &Frame,
    step: &StepExec,
    driving: Option<&IdBatch>,
    relations: &HashMap<String, Relation>,
    stats: &PlanStats,
) -> Result<Frame> {
    let base = frame.cols.len();
    let mut out = Frame {
        cols: vec![Vec::with_capacity(frame.len); base + step.fresh.len()],
        len: 0,
    };
    let mut emit = |frame_row: usize, fresh_vals: &[u32]| {
        for (col, out_col) in out.cols.iter_mut().enumerate().take(base) {
            out_col.push(frame.cols[col][frame_row]);
        }
        for (offset, &val) in fresh_vals.iter().enumerate() {
            out.cols[base + offset].push(val);
        }
        out.len += 1;
    };

    let relation = relations.get(&step.pred);
    let mut scratch: IdRow = Vec::with_capacity(step.arity);
    let mut fresh_vals: IdRow = Vec::with_capacity(step.fresh.len());

    if let Some(probe) = &step.probe {
        let Some(relation) = relation else {
            return Ok(out);
        };
        // Per-distinct-key cache of verified matches (each match = the fresh
        // column values).  Keyed by the key's content hash; the stored key
        // guards against collisions (a mismatch bypasses the cache).  Keys
        // and matches live in two flat arenas so cache entries are three
        // integers — no per-entry allocation.
        let fresh_len = step.fresh.len();
        let key_len = probe.key.len();
        let mut key_arena: Vec<u32> = Vec::new();
        let mut match_arena: Vec<u32> = Vec::new();
        // hash -> (key arena offset, match arena offset, match row count)
        let mut cache: HashMap<u64, (u32, u32, u32), PassBuild> = HashMap::default();
        // A cache over all-distinct keys pays an insert per frame row and
        // never hits; after a warm-up window with almost no hits, stop
        // maintaining it.  Purely a speed knob: the emitted matches are
        // identical either way.
        let mut caching = probe.cacheable;
        let mut lookups = 0usize;
        let mut hits = 0usize;
        // Resolve the index once per step; the plan ensured it, so a miss
        // means the relation was recreated since — fall back to scanning
        // the column group per key (candidates are verified regardless).
        let index = relation.index_map(probe.cols);
        let fallback: &[u32] = relation
            .group(step.arity)
            .map(|g| g.tuple_ids())
            .unwrap_or(&[]);
        let mut key: Vec<u32> = Vec::with_capacity(key_len);
        for i in 0..frame.len {
            key.clear();
            for src in &probe.key {
                key.push(match src {
                    IdSrc::Frame(col) => frame.cols[*col][i],
                    IdSrc::Const(id) => *id,
                });
            }
            let hash = fnv_ids(probe.cols, key.iter().copied());
            if caching {
                lookups += 1;
                if let Some(&(key_at, match_at, match_rows)) = cache.get(&hash) {
                    if key_arena[key_at as usize..][..key_len] == key[..] {
                        hits += 1;
                        for m in 0..match_rows as usize {
                            let vals =
                                &match_arena[match_at as usize + m * fresh_len..][..fresh_len];
                            emit(i, vals);
                        }
                        continue;
                    }
                }
                if lookups == 512 && hits * 8 < lookups {
                    caching = false;
                }
            }
            PlanStats::bump(&stats.index_probes);
            let candidates: &[u32] = match index {
                Some(map) => map.get(&hash).map(Vec::as_slice).unwrap_or(&[]),
                None => fallback,
            };
            let match_at = match_arena.len();
            let mut match_rows = 0u32;
            for &id in candidates {
                relation.row_ids(id, &mut scratch);
                if scratch.len() != step.arity {
                    continue;
                }
                if !verify(&step.positions, &scratch, |col| frame.cols[col][i]) {
                    continue;
                }
                fresh_vals.clear();
                fresh_vals.extend(step.fresh.iter().map(|&pos| scratch[pos]));
                emit(i, &fresh_vals);
                if caching {
                    match_arena.extend_from_slice(&fresh_vals);
                    match_rows += 1;
                }
            }
            if caching {
                let key_at = key_arena.len() as u32;
                key_arena.extend_from_slice(&key);
                cache.insert(hash, (key_at, match_at as u32, match_rows));
            }
        }
        return Ok(out);
    }

    // Scan step: pre-filter candidates on frame-independent constraints
    // (constants, intra-literal duplicates), then check the frame-dependent
    // `Bound` positions per frame row.
    let mut candidates = IdBatch::new(step.arity);
    match driving {
        Some(batch) => {
            debug_assert_eq!(batch.stride, step.arity);
            for row in batch.iter() {
                if verify_static(&step.positions, row) {
                    candidates.push_row(row);
                }
            }
        }
        None => {
            PlanStats::bump(&stats.full_scans);
            if let Some(group) = relation.and_then(|r| r.group(step.arity)) {
                let mut row = Vec::with_capacity(step.arity);
                for index in 0..group.rows() {
                    row.clear();
                    for col in 0..group.arity() {
                        row.push(group.col(col)[index]);
                    }
                    if verify_static(&step.positions, &row) {
                        candidates.push_row(&row);
                    }
                }
            }
        }
    }
    let bound: Vec<(usize, usize)> = step
        .positions
        .iter()
        .enumerate()
        .filter_map(|(pos, spec)| match spec {
            PosSpec::Bound(col) => Some((pos, *col)),
            _ => None,
        })
        .collect();
    for i in 0..frame.len {
        for candidate in candidates.iter() {
            if bound
                .iter()
                .any(|&(pos, col)| candidate[pos] != frame.cols[col][i])
            {
                continue;
            }
            fresh_vals.clear();
            fresh_vals.extend(step.fresh.iter().map(|&pos| candidate[pos]));
            emit(i, &fresh_vals);
        }
    }
    Ok(out)
}

/// Check every constrained position of a candidate row (which subsumes
/// probe-hash collision filtering: all key positions are re-verified).
fn verify(positions: &[PosSpec], row: &[u32], frame_val: impl Fn(usize) -> u32) -> bool {
    positions.iter().enumerate().all(|(pos, spec)| match spec {
        PosSpec::Const(id) => row[pos] == *id,
        PosSpec::Bound(col) => row[pos] == frame_val(*col),
        PosSpec::Dup(first) => row[pos] == row[*first],
        PosSpec::Fresh | PosSpec::Free => true,
    })
}

/// The frame-independent part of [`verify`].
fn verify_static(positions: &[PosSpec], row: &[u32]) -> bool {
    positions.iter().enumerate().all(|(pos, spec)| match spec {
        PosSpec::Const(id) => row[pos] == *id,
        PosSpec::Dup(first) => row[pos] == row[*first],
        _ => true,
    })
}

/// Merge per-head buffers by predicate, then sort and deduplicate the rows —
/// the canonical form that makes the output independent of enumeration
/// order, sharding, and caching.
fn canonicalize(buffers: Vec<(String, IdBatch)>) -> Vec<(String, IdBatch)> {
    let mut out: Vec<(String, IdBatch)> = Vec::new();
    for (pred, batch) in buffers {
        match out.iter_mut().find(|(existing, _)| *existing == pred) {
            Some((_, existing)) => existing.append(&batch),
            None => out.push((pred, batch)),
        }
    }
    out.sort_by(|a, b| a.0.cmp(&b.0));
    for (_, batch) in &mut out {
        batch.sort_dedup();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::plan::{compile_body_plan, PlanStats};
    use crate::parser::parse_rule;
    use crate::value::Value;

    fn setup(facts: &[(&str, Vec<Value>)]) -> (HashMap<String, Relation>, Arc<Interner>) {
        let interner = Arc::new(Interner::new());
        let mut relations: HashMap<String, Relation> = HashMap::new();
        for (pred, tuple) in facts {
            relations
                .entry(pred.to_string())
                .or_insert_with(|| Relation::with_interner(*pred, None, Arc::clone(&interner)))
                .insert(tuple.clone())
                .unwrap();
        }
        (relations, interner)
    }

    fn rehydrate(
        interner: &Interner,
        batches: Vec<(String, IdBatch)>,
    ) -> Vec<(String, Vec<Value>)> {
        let mut out = Vec::new();
        for (pred, batch) in batches {
            for row in batch.iter() {
                out.push((pred.clone(), interner.resolve_row(row)));
            }
        }
        out
    }

    fn run(
        source: &str,
        facts: &[(&str, Vec<Value>)],
        build_indexes: bool,
    ) -> Option<Vec<(String, Vec<Value>)>> {
        let (mut relations, interner) = setup(facts);
        let rule = parse_rule(source).unwrap();
        let udfs = UdfRegistry::new();
        let plan = compile_body_plan(&rule.body, None, &relations, &udfs);
        if build_indexes {
            for spec in &plan.ensure {
                if let Some(relation) = relations.get_mut(&spec.pred) {
                    relation.ensure_index(spec.cols);
                }
            }
        }
        let job = compile_batch(&rule, &plan, None, &relations, &udfs, &interner)?;
        let stats = PlanStats::default();
        let rows = execute_batch(&job, &relations, &stats, &EvalOptions::serial(), None).unwrap();
        Some(rehydrate(&interner, rows))
    }

    fn int(v: i64) -> Value {
        Value::Int(v)
    }

    #[test]
    fn triple_join_matches_expected() {
        let facts: Vec<(&str, Vec<Value>)> = (0..20)
            .flat_map(|i| {
                vec![
                    ("r", vec![int(i), int(i + 1)]),
                    ("s", vec![int(i + 1), int(i + 2)]),
                    ("t", vec![int(i + 2), int(i + 3)]),
                ]
            })
            .collect();
        let derived = run("out(X, W) <- r(X, Y), s(Y, Z), t(Z, W).", &facts, true).unwrap();
        assert_eq!(derived.len(), 20);
        assert!(derived.contains(&("out".to_string(), vec![int(0), int(3)])));
        // Without indexes the scan fallback must agree.
        let scanned = run("out(X, W) <- r(X, Y), s(Y, Z), t(Z, W).", &facts, false).unwrap();
        let mut a = derived.clone();
        let mut b = scanned;
        a.sort_by(|x, y| format!("{x:?}").cmp(&format!("{y:?}")));
        b.sort_by(|x, y| format!("{x:?}").cmp(&format!("{y:?}")));
        assert_eq!(a, b);
    }

    #[test]
    fn constants_duplicates_and_wildcards() {
        let facts = vec![
            ("e", vec![int(1), int(1), int(9)]),
            ("e", vec![int(1), int(2), int(9)]),
            ("e", vec![int(2), int(2), int(7)]),
        ];
        let derived = run("loop(X) <- e(X, X, _).", &facts, true).unwrap();
        assert_eq!(derived.len(), 2);
        // Two matching rows project to the same head tuple: canonicalization
        // deduplicates them.
        let derived = run("nine(X) <- e(X, _, 9).", &facts, true).unwrap();
        assert_eq!(derived, vec![("nine".to_string(), vec![int(1)])]);
    }

    #[test]
    fn unknown_body_constant_is_provably_empty() {
        let facts = vec![("e", vec![int(1), int(2)])];
        let derived = run("out(X) <- e(X, 42).", &facts, true).unwrap();
        assert!(derived.is_empty());
    }

    #[test]
    fn ineligible_shapes_fall_back() {
        let facts = vec![("e", vec![int(1), int(2)])];
        // Negation, comparisons, and expression heads are tuple-path only.
        assert!(run("out(X) <- e(X, Y), !e(Y, X).", &facts, true).is_none());
        assert!(run("out(X) <- e(X, Y), Y < 3.", &facts, true).is_none());
        assert!(run("out(X, Y + 1) <- e(X, Y).", &facts, true).is_none());
    }

    #[test]
    fn head_constants_are_interned_at_compile() {
        let facts = vec![("e", vec![int(1), int(2)])];
        let derived = run("tagged(X, marker) <- e(X, _).", &facts, true).unwrap();
        assert_eq!(
            derived,
            vec![("tagged".to_string(), vec![int(1), Value::str("marker")])]
        );
    }

    #[test]
    fn sharded_execution_matches_serial() {
        let facts: Vec<(&str, Vec<Value>)> = (0..200)
            .flat_map(|i| {
                vec![
                    ("r", vec![int(i), int(i + 1)]),
                    ("s", vec![int(i + 1), int(i % 13)]),
                ]
            })
            .collect();
        let (mut relations, interner) = setup(&facts);
        let rule = parse_rule("out(X, Z) <- r(X, Y), s(Y, Z).").unwrap();
        let udfs = UdfRegistry::new();
        let plan = compile_body_plan(&rule.body, None, &relations, &udfs);
        for spec in &plan.ensure {
            if let Some(relation) = relations.get_mut(&spec.pred) {
                relation.ensure_index(spec.cols);
            }
        }
        let job = compile_batch(&rule, &plan, None, &relations, &udfs, &interner).unwrap();
        let stats = PlanStats::default();
        let serial = execute_batch(&job, &relations, &stats, &EvalOptions::serial(), None).unwrap();
        let pool = WorkerPool::new(4);
        let options = EvalOptions {
            workers: 4,
            parallel_threshold: 1,
        };
        let sharded = execute_batch(&job, &relations, &stats, &options, Some(&pool)).unwrap();
        assert_eq!(serial, sharded);
        assert!(stats.snapshot().parallel_batches > 0);
    }
}
