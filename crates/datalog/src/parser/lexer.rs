//! Tokenizer for the DatalogLB / BloxGenerics surface syntax.

use crate::error::{DatalogError, Result};
use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Lowercase-initial identifier: predicate names and symbolic constants.
    Ident(String),
    /// Uppercase-initial identifier: variables (and predicate variables in
    /// meta-programming contexts).
    UpperIdent(String),
    /// Integer literal.
    Int(i64),
    /// Double-quoted string literal.
    Str(String),
    /// The anonymous variable `_`.
    Underscore,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `'` or `` ` `` — quotes a predicate name or opens a template when
    /// followed by `{`.
    Quote,
    /// `<-`
    RuleArrow,
    /// `->`
    ConstraintArrow,
    /// `<--`
    GenericRuleArrow,
    /// `-->`
    GenericConstraintArrow,
    /// `<<`
    LtLt,
    /// `>>`
    GtGt,
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `!`
    Bang,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) | Token::UpperIdent(s) => write!(f, "{s}"),
            Token::Int(i) => write!(f, "{i}"),
            Token::Str(s) => write!(f, "{s:?}"),
            Token::Underscore => write!(f, "_"),
            Token::LParen => write!(f, "("),
            Token::RParen => write!(f, ")"),
            Token::LBracket => write!(f, "["),
            Token::RBracket => write!(f, "]"),
            Token::LBrace => write!(f, "{{"),
            Token::RBrace => write!(f, "}}"),
            Token::Comma => write!(f, ","),
            Token::Dot => write!(f, "."),
            Token::Quote => write!(f, "'"),
            Token::RuleArrow => write!(f, "<-"),
            Token::ConstraintArrow => write!(f, "->"),
            Token::GenericRuleArrow => write!(f, "<--"),
            Token::GenericConstraintArrow => write!(f, "-->"),
            Token::LtLt => write!(f, "<<"),
            Token::GtGt => write!(f, ">>"),
            Token::Eq => write!(f, "="),
            Token::Ne => write!(f, "!="),
            Token::Lt => write!(f, "<"),
            Token::Le => write!(f, "<="),
            Token::Gt => write!(f, ">"),
            Token::Ge => write!(f, ">="),
            Token::Bang => write!(f, "!"),
            Token::Plus => write!(f, "+"),
            Token::Minus => write!(f, "-"),
            Token::Star => write!(f, "*"),
            Token::Slash => write!(f, "/"),
            Token::Percent => write!(f, "%"),
        }
    }
}

/// A token paired with its source position (1-based).
#[derive(Debug, Clone, PartialEq)]
pub struct SpannedToken {
    pub token: Token,
    pub line: usize,
    pub column: usize,
}

/// Tokenize DatalogLB source text.
///
/// `//` and `#` start line comments; `/* … */` block comments are supported
/// (non-nesting).  The unicode left single quotation mark `‘` used in the
/// paper's listings is accepted as a [`Token::Quote`].
pub fn tokenize(source: &str) -> Result<Vec<SpannedToken>> {
    let mut tokens = Vec::new();
    let chars: Vec<char> = source.chars().collect();
    let mut i = 0usize;
    let mut line = 1usize;
    let mut column = 1usize;

    let err = |message: String, line: usize, column: usize| DatalogError::Parse {
        message,
        line,
        column,
    };

    macro_rules! push {
        ($tok:expr, $len:expr) => {{
            tokens.push(SpannedToken {
                token: $tok,
                line,
                column,
            });
            i += $len;
            column += $len;
        }};
    }

    while i < chars.len() {
        let c = chars[i];
        let next = chars.get(i + 1).copied();
        match c {
            '\n' => {
                i += 1;
                line += 1;
                column = 1;
            }
            ' ' | '\t' | '\r' => {
                i += 1;
                column += 1;
            }
            '/' if next == Some('/') => {
                while i < chars.len() && chars[i] != '\n' {
                    i += 1;
                }
            }
            '#' => {
                while i < chars.len() && chars[i] != '\n' {
                    i += 1;
                }
            }
            '/' if next == Some('*') => {
                i += 2;
                column += 2;
                loop {
                    if i + 1 >= chars.len() {
                        return Err(err("unterminated block comment".into(), line, column));
                    }
                    if chars[i] == '*' && chars[i + 1] == '/' {
                        i += 2;
                        column += 2;
                        break;
                    }
                    if chars[i] == '\n' {
                        line += 1;
                        column = 1;
                    } else {
                        column += 1;
                    }
                    i += 1;
                }
            }
            '(' => push!(Token::LParen, 1),
            ')' => push!(Token::RParen, 1),
            '[' => push!(Token::LBracket, 1),
            ']' => push!(Token::RBracket, 1),
            '{' => push!(Token::LBrace, 1),
            '}' => push!(Token::RBrace, 1),
            ',' => push!(Token::Comma, 1),
            '.' => push!(Token::Dot, 1),
            '\'' | '`' | '‘' | '’' => push!(Token::Quote, 1),
            '+' => push!(Token::Plus, 1),
            '*' => push!(Token::Star, 1),
            '/' => push!(Token::Slash, 1),
            '%' => push!(Token::Percent, 1),
            '=' => push!(Token::Eq, 1),
            '!' => {
                if next == Some('=') {
                    push!(Token::Ne, 2);
                } else {
                    push!(Token::Bang, 1);
                }
            }
            '<' => match next {
                Some('-') => {
                    if chars.get(i + 2) == Some(&'-') {
                        push!(Token::GenericRuleArrow, 3);
                    } else {
                        push!(Token::RuleArrow, 2);
                    }
                }
                Some('=') => push!(Token::Le, 2),
                Some('<') => push!(Token::LtLt, 2),
                _ => push!(Token::Lt, 1),
            },
            '>' => match next {
                Some('=') => push!(Token::Ge, 2),
                Some('>') => push!(Token::GtGt, 2),
                _ => push!(Token::Gt, 1),
            },
            '-' => match next {
                Some('-') if chars.get(i + 2) == Some(&'>') => {
                    push!(Token::GenericConstraintArrow, 3)
                }
                Some('>') => push!(Token::ConstraintArrow, 2),
                Some(d) if d.is_ascii_digit() => {
                    // Negative integer literal.
                    let start = i + 1;
                    let mut end = start;
                    while end < chars.len() && chars[end].is_ascii_digit() {
                        end += 1;
                    }
                    let text: String = chars[start..end].iter().collect();
                    let value: i64 = text.parse().map_err(|_| {
                        err(
                            format!("integer literal -{text} out of range"),
                            line,
                            column,
                        )
                    })?;
                    let len = end - i;
                    push!(Token::Int(-value), len);
                }
                _ => push!(Token::Minus, 1),
            },
            '"' => {
                let mut text = String::new();
                let mut j = i + 1;
                let mut consumed_newlines = 0usize;
                loop {
                    match chars.get(j) {
                        None => {
                            return Err(err("unterminated string literal".into(), line, column))
                        }
                        Some('"') => break,
                        Some('\\') => {
                            match chars.get(j + 1) {
                                Some('n') => text.push('\n'),
                                Some('t') => text.push('\t'),
                                Some('"') => text.push('"'),
                                Some('\\') => text.push('\\'),
                                Some(other) => text.push(*other),
                                None => {
                                    return Err(err("unterminated escape".into(), line, column))
                                }
                            }
                            j += 2;
                            continue;
                        }
                        Some('\n') => {
                            consumed_newlines += 1;
                            text.push('\n');
                            j += 1;
                        }
                        Some(other) => {
                            text.push(*other);
                            j += 1;
                        }
                    }
                }
                let len = j + 1 - i;
                tokens.push(SpannedToken {
                    token: Token::Str(text),
                    line,
                    column,
                });
                i = j + 1;
                if consumed_newlines > 0 {
                    line += consumed_newlines;
                    column = 1;
                } else {
                    column += len;
                }
            }
            '_' => {
                // `_` alone is a wildcard; `_foo` is an identifier.
                let mut end = i + 1;
                while end < chars.len() && (chars[end].is_ascii_alphanumeric() || chars[end] == '_')
                {
                    end += 1;
                }
                if end == i + 1 {
                    push!(Token::Underscore, 1);
                } else {
                    let text: String = chars[i..end].iter().collect();
                    let len = end - i;
                    push!(Token::Ident(text), len);
                }
            }
            c if c.is_ascii_digit() => {
                let mut end = i;
                while end < chars.len() && chars[end].is_ascii_digit() {
                    end += 1;
                }
                let text: String = chars[i..end].iter().collect();
                let value: i64 = text.parse().map_err(|_| {
                    err(format!("integer literal {text} out of range"), line, column)
                })?;
                let len = end - i;
                push!(Token::Int(value), len);
            }
            c if c.is_ascii_alphabetic() => {
                let mut end = i;
                while end < chars.len()
                    && (chars[end].is_ascii_alphanumeric()
                        || chars[end] == '_'
                        || chars[end] == '$')
                {
                    end += 1;
                }
                let text: String = chars[i..end].iter().collect();
                let len = end - i;
                if c.is_ascii_uppercase() {
                    push!(Token::UpperIdent(text), len);
                } else {
                    push!(Token::Ident(text), len);
                }
            }
            other => {
                return Err(err(format!("unexpected character {other:?}"), line, column));
            }
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(source: &str) -> Vec<Token> {
        tokenize(source)
            .unwrap()
            .into_iter()
            .map(|t| t.token)
            .collect()
    }

    #[test]
    fn arrows_disambiguated() {
        assert_eq!(
            toks("<- -> <-- --> << >> <= >= < > != ="),
            vec![
                Token::RuleArrow,
                Token::ConstraintArrow,
                Token::GenericRuleArrow,
                Token::GenericConstraintArrow,
                Token::LtLt,
                Token::GtGt,
                Token::Le,
                Token::Ge,
                Token::Lt,
                Token::Gt,
                Token::Ne,
                Token::Eq,
            ]
        );
    }

    #[test]
    fn idents_variables_and_constants() {
        assert_eq!(
            toks(r#"reachable(X, n1, 42, "CA")."#),
            vec![
                Token::Ident("reachable".into()),
                Token::LParen,
                Token::UpperIdent("X".into()),
                Token::Comma,
                Token::Ident("n1".into()),
                Token::Comma,
                Token::Int(42),
                Token::Comma,
                Token::Str("CA".into()),
                Token::RParen,
                Token::Dot,
            ]
        );
    }

    #[test]
    fn negative_numbers_and_minus() {
        assert_eq!(toks("-5"), vec![Token::Int(-5)]);
        assert_eq!(
            toks("C - 1"),
            vec![Token::UpperIdent("C".into()), Token::Minus, Token::Int(1)]
        );
    }

    #[test]
    fn quotes_and_templates() {
        assert_eq!(
            toks("says[`reachable] '{ T(V) }"),
            vec![
                Token::Ident("says".into()),
                Token::LBracket,
                Token::Quote,
                Token::Ident("reachable".into()),
                Token::RBracket,
                Token::Quote,
                Token::LBrace,
                Token::UpperIdent("T".into()),
                Token::LParen,
                Token::UpperIdent("V".into()),
                Token::RParen,
                Token::RBrace,
            ]
        );
    }

    #[test]
    fn comments_skipped() {
        assert_eq!(
            toks("a(X). // comment\n# another\n/* block\ncomment */ b(Y)."),
            vec![
                Token::Ident("a".into()),
                Token::LParen,
                Token::UpperIdent("X".into()),
                Token::RParen,
                Token::Dot,
                Token::Ident("b".into()),
                Token::LParen,
                Token::UpperIdent("Y".into()),
                Token::RParen,
                Token::Dot,
            ]
        );
    }

    #[test]
    fn wildcard_vs_ident() {
        assert_eq!(toks("_"), vec![Token::Underscore]);
        assert_eq!(toks("_x"), vec![Token::Ident("_x".into())]);
    }

    #[test]
    fn string_escapes() {
        assert_eq!(toks(r#""a\"b\n""#), vec![Token::Str("a\"b\n".into())]);
    }

    #[test]
    fn positions_reported() {
        let spanned = tokenize("a\n  b").unwrap();
        assert_eq!((spanned[0].line, spanned[0].column), (1, 1));
        assert_eq!((spanned[1].line, spanned[1].column), (2, 3));
    }

    #[test]
    fn unterminated_string_errors() {
        assert!(tokenize("\"abc").is_err());
        assert!(tokenize("/* unterminated").is_err());
    }

    #[test]
    fn unexpected_character_errors() {
        let err = tokenize("a @ b").unwrap_err();
        assert!(err.to_string().contains('@'));
    }
}
