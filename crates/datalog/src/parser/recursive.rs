//! Recursive-descent parser over the token stream produced by
//! [`super::lexer::tokenize`].

use super::lexer::{SpannedToken, Token};
use crate::ast::{
    AggFunc, AggSpec, ArithOp, Atom, CmpOp, Constraint, FactDecl, GenericConstraint, GenericRule,
    Literal, PredRef, Program, Rule, Statement, Template, Term,
};
use crate::error::{DatalogError, Result};
use crate::value::Value;

/// The kind of arrow found between the head and body of a clause.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Arrow {
    Rule,
    Constraint,
    GenericRule,
    GenericConstraint,
    /// No arrow: the clause is a ground fact.
    None,
}

/// Items that may appear on the left-hand side of a clause.
#[derive(Debug, Clone)]
enum HeadItem {
    Atom(Atom),
    Template(Template),
}

/// Recursive-descent parser.
pub struct Parser {
    tokens: Vec<SpannedToken>,
    pos: usize,
}

impl Parser {
    /// Create a parser over a token stream.
    pub fn new(tokens: Vec<SpannedToken>) -> Self {
        Parser { tokens, pos: 0 }
    }

    /// Parse the whole token stream as a program.
    pub fn parse_program(mut self) -> Result<Program> {
        let mut program = Program::new();
        while !self.at_end() {
            program.statements.push(self.parse_statement()?);
        }
        Ok(program)
    }

    // ------------------------------------------------------------------
    // Token-stream helpers
    // ------------------------------------------------------------------

    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|t| &t.token)
    }

    fn peek_at(&self, offset: usize) -> Option<&Token> {
        self.tokens.get(self.pos + offset).map(|t| &t.token)
    }

    fn advance(&mut self) -> Option<Token> {
        let token = self.tokens.get(self.pos).map(|t| t.token.clone());
        if token.is_some() {
            self.pos += 1;
        }
        token
    }

    fn position(&self) -> (usize, usize) {
        self.tokens
            .get(self.pos.min(self.tokens.len().saturating_sub(1)))
            .map(|t| (t.line, t.column))
            .unwrap_or((0, 0))
    }

    fn error(&self, message: impl Into<String>) -> DatalogError {
        let (line, column) = self.position();
        DatalogError::Parse {
            message: message.into(),
            line,
            column,
        }
    }

    fn expect(&mut self, expected: &Token) -> Result<()> {
        match self.peek() {
            Some(token) if token == expected => {
                self.pos += 1;
                Ok(())
            }
            Some(token) => Err(self.error(format!("expected `{expected}`, found `{token}`"))),
            None => Err(self.error(format!("expected `{expected}`, found end of input"))),
        }
    }

    fn eat(&mut self, expected: &Token) -> bool {
        if self.peek() == Some(expected) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    // ------------------------------------------------------------------
    // Statements
    // ------------------------------------------------------------------

    /// Parse one top-level (or template-level) statement, consuming the
    /// trailing dot.
    pub fn parse_statement(&mut self) -> Result<Statement> {
        let heads = self.parse_head_items()?;
        let arrow = self.parse_arrow();
        let statement = match arrow {
            Arrow::None => {
                // A ground fact (or several separated by commas would have
                // been joined; each statement carries exactly one).
                if heads.len() != 1 {
                    return Err(self.error("a fact statement must contain exactly one atom"));
                }
                match heads.into_iter().next().unwrap() {
                    HeadItem::Atom(atom) => Statement::Fact(FactDecl { atom }),
                    HeadItem::Template(_) => {
                        return Err(self.error("a template cannot stand alone as a fact"))
                    }
                }
            }
            Arrow::Rule => {
                let agg = self.parse_optional_agg()?;
                let body = self.parse_literals_until_dot()?;
                let head = self.heads_to_atoms(heads)?;
                let mut rule = Rule::new(head, body);
                rule.agg = agg;
                Statement::Rule(rule)
            }
            Arrow::Constraint => {
                let rhs = self.parse_literals_until_dot()?;
                let lhs = self.heads_to_literals(heads)?;
                Statement::Constraint(Constraint { lhs, rhs })
            }
            Arrow::GenericRule => {
                let body = self.parse_literals_until_dot()?;
                let mut head_atoms = Vec::new();
                let mut templates = Vec::new();
                for item in heads {
                    match item {
                        HeadItem::Atom(a) => head_atoms.push(a),
                        HeadItem::Template(t) => templates.push(t),
                    }
                }
                Statement::GenericRule(GenericRule {
                    head: head_atoms,
                    templates,
                    body,
                })
            }
            Arrow::GenericConstraint => {
                let rhs = self.parse_literals_until_dot()?;
                let lhs = self.heads_to_literals(heads)?;
                Statement::GenericConstraint(GenericConstraint { lhs, rhs })
            }
        };
        if arrow == Arrow::None {
            self.expect(&Token::Dot)?;
        }
        Ok(statement)
    }

    fn heads_to_atoms(&self, heads: Vec<HeadItem>) -> Result<Vec<Atom>> {
        heads
            .into_iter()
            .map(|item| match item {
                HeadItem::Atom(a) => Ok(a),
                HeadItem::Template(_) => {
                    Err(self.error("code templates may only appear in generic (<--) rules"))
                }
            })
            .collect()
    }

    fn heads_to_literals(&self, heads: Vec<HeadItem>) -> Result<Vec<Literal>> {
        Ok(self
            .heads_to_atoms(heads)?
            .into_iter()
            .map(Literal::Pos)
            .collect())
    }

    fn parse_arrow(&mut self) -> Arrow {
        match self.peek() {
            Some(Token::RuleArrow) => {
                self.pos += 1;
                Arrow::Rule
            }
            Some(Token::ConstraintArrow) => {
                self.pos += 1;
                Arrow::Constraint
            }
            Some(Token::GenericRuleArrow) => {
                self.pos += 1;
                Arrow::GenericRule
            }
            Some(Token::GenericConstraintArrow) => {
                self.pos += 1;
                Arrow::GenericConstraint
            }
            _ => Arrow::None,
        }
    }

    fn parse_head_items(&mut self) -> Result<Vec<HeadItem>> {
        let mut items = Vec::new();
        loop {
            // Template: quote followed by `{`.
            if self.peek() == Some(&Token::Quote) && self.peek_at(1) == Some(&Token::LBrace) {
                self.pos += 2;
                items.push(HeadItem::Template(self.parse_template_body()?));
            } else {
                items.push(HeadItem::Atom(self.parse_atom()?));
            }
            if !self.eat(&Token::Comma) {
                break;
            }
        }
        Ok(items)
    }

    fn parse_template_body(&mut self) -> Result<Template> {
        let mut statements = Vec::new();
        loop {
            match self.peek() {
                Some(Token::RBrace) => {
                    self.pos += 1;
                    break;
                }
                None => return Err(self.error("unterminated code template: expected `}`")),
                _ => statements.push(self.parse_statement()?),
            }
        }
        Ok(Template { statements })
    }

    // ------------------------------------------------------------------
    // Bodies and literals
    // ------------------------------------------------------------------

    fn parse_optional_agg(&mut self) -> Result<Option<AggSpec>> {
        if let Some(Token::Ident(name)) = self.peek() {
            if name == "agg" && self.peek_at(1) == Some(&Token::LtLt) {
                self.pos += 2;
                let result_var = match self.advance() {
                    Some(Token::UpperIdent(v)) => v,
                    other => {
                        return Err(self.error(format!(
                            "expected aggregation result variable, found {other:?}"
                        )))
                    }
                };
                self.expect(&Token::Eq)?;
                let func = match self.advance() {
                    Some(Token::Ident(f)) => match f.as_str() {
                        "min" => AggFunc::Min,
                        "max" => AggFunc::Max,
                        "count" => AggFunc::Count,
                        "sum" => AggFunc::Sum,
                        other => {
                            return Err(self.error(format!("unknown aggregation function {other}")))
                        }
                    },
                    other => {
                        return Err(
                            self.error(format!("expected aggregation function, found {other:?}"))
                        )
                    }
                };
                self.expect(&Token::LParen)?;
                let input_var = match self.advance() {
                    Some(Token::UpperIdent(v)) => v,
                    other => {
                        return Err(self.error(format!(
                            "expected aggregation input variable, found {other:?}"
                        )))
                    }
                };
                self.expect(&Token::RParen)?;
                self.expect(&Token::GtGt)?;
                return Ok(Some(AggSpec {
                    result_var,
                    func,
                    input_var,
                }));
            }
        }
        Ok(None)
    }

    /// Parse comma-separated body literals up to (and including) the closing
    /// dot.  An immediately-following dot yields an empty body, which is how
    /// `pathvar(P) -> .` declares an entity type.
    fn parse_literals_until_dot(&mut self) -> Result<Vec<Literal>> {
        let mut literals = Vec::new();
        if self.eat(&Token::Dot) {
            return Ok(literals);
        }
        loop {
            literals.push(self.parse_literal()?);
            if self.eat(&Token::Comma) {
                continue;
            }
            self.expect(&Token::Dot)?;
            break;
        }
        Ok(literals)
    }

    fn parse_literal(&mut self) -> Result<Literal> {
        if self.eat(&Token::Bang) {
            return Ok(Literal::Neg(self.parse_atom()?));
        }
        // An identifier followed by `(` or `[` begins an atom; anything else
        // is the left operand of a comparison.
        let starts_atom = match (self.peek(), self.peek_at(1)) {
            (Some(Token::Ident(_)) | Some(Token::UpperIdent(_)), Some(Token::LParen)) => true,
            (Some(Token::Ident(name)), Some(Token::LBracket)) => {
                // `self[] = X` style comparisons never occur: singleton access
                // in a comparison is always written inside an atom; treat a
                // bracketed identifier as an atom unless the bracket is empty
                // and the whole thing is followed by a comparison operator.
                // `p[] = K` is functional-atom syntax, which the atom parser
                // handles, so an atom is correct in every bracketed case.
                let _ = name;
                true
            }
            (Some(Token::UpperIdent(_)), Some(Token::LBracket)) => true,
            _ => false,
        };
        if starts_atom {
            return Ok(Literal::Pos(self.parse_atom()?));
        }
        // Comparison literal.
        let lhs = self.parse_term()?;
        let op = match self.advance() {
            Some(Token::Eq) => CmpOp::Eq,
            Some(Token::Ne) => CmpOp::Ne,
            Some(Token::Lt) => CmpOp::Lt,
            Some(Token::Le) => CmpOp::Le,
            Some(Token::Gt) => CmpOp::Gt,
            Some(Token::Ge) => CmpOp::Ge,
            other => {
                return Err(self.error(format!(
                    "expected comparison operator after term, found {other:?}"
                )))
            }
        };
        let rhs = self.parse_term()?;
        Ok(Literal::Cmp(lhs, op, rhs))
    }

    // ------------------------------------------------------------------
    // Atoms
    // ------------------------------------------------------------------

    fn parse_atom(&mut self) -> Result<Atom> {
        let name_token = self.advance();
        let (name, is_upper) = match name_token {
            Some(Token::Ident(n)) => (n, false),
            Some(Token::UpperIdent(n)) => (n, true),
            other => return Err(self.error(format!("expected predicate name, found {other:?}"))),
        };

        // Bracketed part: parameterization or functional keys.
        if self.eat(&Token::LBracket) {
            let mut bracket_items: Vec<BracketItem> = Vec::new();
            if !self.eat(&Token::RBracket) {
                loop {
                    bracket_items.push(self.parse_bracket_item()?);
                    if self.eat(&Token::Comma) {
                        continue;
                    }
                    self.expect(&Token::RBracket)?;
                    break;
                }
            }
            match self.peek() {
                Some(Token::LParen) => {
                    // Parameterized atom, e.g. says[`reachable](…) or says[T](…)
                    // or the width-annotated built-in type int[32](…).
                    self.pos += 1;
                    let terms = self.parse_terms_until_rparen()?;
                    let pred = match bracket_items.as_slice() {
                        [BracketItem::QuotedPred(p)] => PredRef::Parameterized {
                            generic: name,
                            param: p.clone(),
                        },
                        [BracketItem::Term(Term::Var(v))] => PredRef::ParameterizedVar {
                            generic: name,
                            var: v.clone(),
                        },
                        [BracketItem::Term(Term::Const(Value::Int(_)))] => {
                            // `int[32]`, `int[64]`, … — width annotations on the
                            // built-in integer type collapse to `int`.
                            PredRef::Named(name)
                        }
                        _ => {
                            return Err(self.error(format!(
                                "predicate parameterization of {name} must be a single quoted \
                                 predicate or predicate variable"
                            )))
                        }
                    };
                    Ok(Atom {
                        pred,
                        terms,
                        functional: false,
                    })
                }
                Some(Token::Eq) => {
                    // Functional syntax: name[keys…] = value.
                    self.pos += 1;
                    let value = self.parse_term()?;
                    let mut terms: Vec<Term> = Vec::with_capacity(bracket_items.len() + 1);
                    for item in bracket_items {
                        terms.push(match item {
                            BracketItem::Term(t) => t,
                            BracketItem::QuotedPred(p) => Term::Const(Value::pred(p)),
                        });
                    }
                    terms.push(value);
                    let pred = if is_upper {
                        PredRef::Var(name)
                    } else {
                        PredRef::Named(name)
                    };
                    Ok(Atom {
                        pred,
                        terms,
                        functional: true,
                    })
                }
                _ => Err(self.error(format!(
                    "expected `(` or `=` after bracketed predicate {name}[…]"
                ))),
            }
        } else if self.eat(&Token::LParen) {
            let terms = self.parse_terms_until_rparen()?;
            let pred = if is_upper {
                PredRef::Var(name)
            } else {
                PredRef::Named(name)
            };
            Ok(Atom {
                pred,
                terms,
                functional: false,
            })
        } else {
            // Zero-argument (propositional) atom.
            let pred = if is_upper {
                PredRef::Var(name)
            } else {
                PredRef::Named(name)
            };
            Ok(Atom {
                pred,
                terms: Vec::new(),
                functional: false,
            })
        }
    }

    fn parse_terms_until_rparen(&mut self) -> Result<Vec<Term>> {
        let mut terms = Vec::new();
        if self.eat(&Token::RParen) {
            return Ok(terms);
        }
        loop {
            terms.push(self.parse_term()?);
            if self.eat(&Token::Comma) {
                continue;
            }
            self.expect(&Token::RParen)?;
            break;
        }
        Ok(terms)
    }

    fn parse_bracket_item(&mut self) -> Result<BracketItem> {
        if self.peek() == Some(&Token::Quote) {
            // A quoted predicate parameter: `reachable
            self.pos += 1;
            match self.advance() {
                Some(Token::Ident(p)) => Ok(BracketItem::QuotedPred(p)),
                other => Err(self.error(format!(
                    "expected predicate name after quote, found {other:?}"
                ))),
            }
        } else {
            Ok(BracketItem::Term(self.parse_term()?))
        }
    }

    // ------------------------------------------------------------------
    // Terms
    // ------------------------------------------------------------------

    /// Parse a term with two precedence levels: `* / %` bind tighter than `+ -`.
    fn parse_term(&mut self) -> Result<Term> {
        let mut lhs = self.parse_term_factor()?;
        loop {
            let op = match self.peek() {
                Some(Token::Plus) => ArithOp::Add,
                Some(Token::Minus) => ArithOp::Sub,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.parse_term_factor()?;
            lhs = Term::BinOp(Box::new(lhs), op, Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_term_factor(&mut self) -> Result<Term> {
        let mut lhs = self.parse_term_primary()?;
        loop {
            let op = match self.peek() {
                Some(Token::Star) => {
                    // Distinguish the variable-sequence marker `V*` from
                    // multiplication `V * 2`: a sequence marker is immediately
                    // followed by a delimiter.
                    let delimiter_follows = matches!(
                        self.peek_at(1),
                        Some(Token::Comma)
                            | Some(Token::RParen)
                            | Some(Token::RBracket)
                            | Some(Token::Dot)
                            | Some(Token::GtGt)
                            | None
                    );
                    if delimiter_follows {
                        if let Term::Var(v) = &lhs {
                            self.pos += 1;
                            lhs = Term::VarSeq(v.clone());
                            continue;
                        }
                    }
                    ArithOp::Mul
                }
                Some(Token::Slash) => ArithOp::Div,
                Some(Token::Percent) => ArithOp::Mod,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.parse_term_primary()?;
            lhs = Term::BinOp(Box::new(lhs), op, Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_term_primary(&mut self) -> Result<Term> {
        match self.peek().cloned() {
            Some(Token::Int(i)) => {
                self.pos += 1;
                Ok(Term::Const(Value::Int(i)))
            }
            Some(Token::Str(s)) => {
                self.pos += 1;
                Ok(Term::Const(Value::str(s)))
            }
            Some(Token::Underscore) => {
                self.pos += 1;
                Ok(Term::Wildcard)
            }
            Some(Token::UpperIdent(v)) => {
                self.pos += 1;
                Ok(Term::Var(v))
            }
            Some(Token::Quote) => {
                self.pos += 1;
                match self.advance() {
                    Some(Token::Ident(p)) => Ok(Term::Const(Value::pred(p))),
                    other => Err(self.error(format!(
                        "expected a predicate name after quote in term position, found {other:?}"
                    ))),
                }
            }
            Some(Token::Ident(name)) => {
                self.pos += 1;
                // `name[]` in a term position accesses a zero-key functional
                // predicate, e.g. `self[]`.
                if self.peek() == Some(&Token::LBracket)
                    && self.peek_at(1) == Some(&Token::RBracket)
                {
                    self.pos += 2;
                    return Ok(Term::SingletonRef(name));
                }
                match name.as_str() {
                    "true" => Ok(Term::Const(Value::Bool(true))),
                    "false" => Ok(Term::Const(Value::Bool(false))),
                    _ => Ok(Term::Const(Value::str(name))),
                }
            }
            Some(Token::LParen) => {
                self.pos += 1;
                let term = self.parse_term()?;
                self.expect(&Token::RParen)?;
                Ok(term)
            }
            other => Err(self.error(format!("expected a term, found {other:?}"))),
        }
    }
}

/// An item inside a bracketed predicate suffix `name[…]`.
#[derive(Debug, Clone)]
enum BracketItem {
    Term(Term),
    QuotedPred(String),
}
