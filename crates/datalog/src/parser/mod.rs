//! Parser for the DatalogLB / BloxGenerics surface syntax.
//!
//! The grammar follows the listings in the SecureBlox paper:
//!
//! ```text
//! program     := statement*
//! statement   := clause "."
//! clause      := heads "<-"  [agg] body        (rule)
//!              | heads "->"  body?             (integrity constraint)
//!              | heads "<--" body              (generic rule)
//!              | heads "-->" body              (generic constraint)
//!              | atom                          (ground fact)
//! heads       := head_item ("," head_item)*
//! head_item   := atom | "'{" statement* "}"    (code template)
//! body        := literal ("," literal)*
//! literal     := "!" atom | atom | term cmp term
//! atom        := pred_ref "(" terms ")"
//!              | name "[" terms "]" "=" term   (functional syntax)
//!              | name
//! pred_ref    := name | name "[" "`" name "]" | name "[" VAR "]" | VAR
//! agg         := "agg" "<<" VAR "=" func "(" VAR ")" ">>"
//! term        := arithmetic over: VAR | VAR "*" | "_" | constant
//!              | name "[" "]"                  (singleton access, e.g. self[])
//!              | "`" name                      (quoted predicate constant)
//! ```

pub mod lexer;
mod recursive;

pub use lexer::{tokenize, SpannedToken, Token};
pub use recursive::Parser;

use crate::ast::Program;
use crate::error::Result;

/// Parse a complete program from source text.
pub fn parse_program(source: &str) -> Result<Program> {
    let tokens = tokenize(source)?;
    Parser::new(tokens).parse_program()
}

/// Parse a single rule from source text (convenience for tests and builders).
pub fn parse_rule(source: &str) -> Result<crate::ast::Rule> {
    let program = parse_program(source)?;
    let rule = program.rules().next().cloned();
    rule.ok_or_else(|| crate::error::DatalogError::Parse {
        message: "expected a rule".into(),
        line: 1,
        column: 1,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{AggFunc, CmpOp, Literal, PredRef, Statement, Term};
    use crate::value::Value;

    #[test]
    fn parses_transitive_closure() {
        let program = parse_program(
            "reachable(X, Y) <- link(X, Y).\n\
             reachable(X, Y) <- link(X, Z), reachable(Z, Y).",
        )
        .unwrap();
        assert_eq!(program.rules().count(), 2);
        let rule = program.rules().nth(1).unwrap();
        assert_eq!(rule.head.len(), 1);
        assert_eq!(rule.body.len(), 2);
        assert_eq!(
            rule.to_string(),
            "reachable(X, Y) <- link(X, Z), reachable(Z, Y)."
        );
    }

    #[test]
    fn parses_facts_with_symbols_strings_and_ints() {
        let program =
            parse_program(r#"link(n1, n2). creditscore("CA", 720). flag(true)."#).unwrap();
        let facts: Vec<_> = program.facts().collect();
        assert_eq!(facts.len(), 3);
        assert_eq!(facts[0].atom.terms[0], Term::Const(Value::str("n1")));
        assert_eq!(facts[1].atom.terms[1], Term::Const(Value::Int(720)));
        assert_eq!(facts[2].atom.terms[0], Term::Const(Value::Bool(true)));
    }

    #[test]
    fn parses_type_declarations_and_empty_rhs() {
        let program = parse_program(
            "link(N1, N2) -> node(N1), node(N2).\n\
             pathvar(P) -> .\n\
             path[P, Src, Dst] = C -> pathvar(P), node(Src), node(Dst), int[32](C).",
        )
        .unwrap();
        let constraints: Vec<_> = program.constraints().collect();
        assert_eq!(constraints.len(), 3);
        assert!(constraints[1].rhs.is_empty());
        // int[32] collapses to the built-in type `int`.
        let last = constraints[2];
        let type_atom = last.rhs.last().unwrap().as_pos().unwrap();
        assert_eq!(type_atom.pred, PredRef::named("int"));
    }

    #[test]
    fn parses_functional_atoms_and_singletons() {
        let rule =
            parse_rule("bestcost[Me, N] = C <- agg<< C = min(Cx) >> path[P, Me, N] = Cx.").unwrap();
        assert!(rule.head[0].functional);
        assert_eq!(rule.head[0].terms.len(), 3);
        let agg = rule.agg.as_ref().unwrap();
        assert_eq!(agg.func, AggFunc::Min);
        assert_eq!(agg.result_var, "C");
        assert_eq!(agg.input_var, "Cx");

        let rule = parse_rule("out(K) <- private_key[] = K.").unwrap();
        let atom = rule.body[0].as_pos().unwrap();
        assert!(atom.functional);
        assert_eq!(atom.terms.len(), 1);
    }

    #[test]
    fn parses_self_singleton_as_term() {
        let rule =
            parse_rule("says(Z, X) <- link(X, Z), says_reachable(Z, self[], Z, Y).").unwrap();
        let atom = rule.body[1].as_pos().unwrap();
        assert_eq!(atom.terms[1], Term::SingletonRef("self".into()));
    }

    #[test]
    fn parses_parameterized_predicates() {
        let rule = parse_rule("reachable(X, Y) <- link(X, Z), says[`reachable](Z, self[], Z, Y).")
            .unwrap();
        let atom = rule.body[1].as_pos().unwrap();
        assert_eq!(
            atom.pred,
            PredRef::Parameterized {
                generic: "says".into(),
                param: "reachable".into()
            }
        );
        // ASCII apostrophe works the same way.
        let rule2 = parse_rule("reachable(X, Y) <- link(X, Z), says['reachable](Z, self[], Z, Y).")
            .unwrap();
        assert_eq!(rule.body[1], rule2.body[1]);
    }

    #[test]
    fn parses_negation_and_comparisons() {
        let rule = parse_rule(
            "adv(U, P, N) <- link(Me, N), path[P, Me, N2] = C, N != N2, !pathlink[P, N] = _, C + 1 < 16.",
        )
        .unwrap();
        assert!(matches!(rule.body[2], Literal::Cmp(_, CmpOp::Ne, _)));
        assert!(matches!(rule.body[3], Literal::Neg(_)));
        match &rule.body[4] {
            Literal::Cmp(lhs, CmpOp::Lt, rhs) => {
                assert!(matches!(lhs, Term::BinOp(..)));
                assert_eq!(rhs, &Term::Const(Value::Int(16)));
            }
            other => panic!("expected comparison, got {other:?}"),
        }
    }

    #[test]
    fn parses_arithmetic_in_head() {
        let rule = parse_rule("cost(X, C + 1) <- link(X), cost(X, C).").unwrap();
        assert!(matches!(rule.head[0].terms[1], Term::BinOp(..)));
    }

    #[test]
    fn parses_generic_rule_with_template() {
        let program = parse_program(
            "says[T] = ST, predicate(ST),\n\
             '{\n\
               ST(P1, P2, V*) -> principal(P1), principal(P2), types[T](V*).\n\
             }\n\
             <-- predicate(T).",
        )
        .unwrap();
        let generic: Vec<_> = program.generic_rules().collect();
        assert_eq!(generic.len(), 1);
        let g = generic[0];
        assert_eq!(g.head.len(), 2);
        assert!(g.head[0].functional);
        assert_eq!(g.templates.len(), 1);
        assert_eq!(g.templates[0].statements.len(), 1);
        match &g.templates[0].statements[0] {
            Statement::Constraint(c) => {
                let head_atom = c.lhs[0].as_pos().unwrap();
                assert_eq!(head_atom.pred, PredRef::Var("ST".into()));
                assert_eq!(head_atom.terms[2], Term::VarSeq("V".into()));
                let types_atom = c.rhs[2].as_pos().unwrap();
                assert_eq!(
                    types_atom.pred,
                    PredRef::ParameterizedVar {
                        generic: "types".into(),
                        var: "T".into()
                    }
                );
            }
            other => panic!("expected constraint, got {other:?}"),
        }
        assert_eq!(g.body.len(), 1);
    }

    #[test]
    fn parses_generic_constraint() {
        let program = parse_program("says(P, SP) --> exportable(P).").unwrap();
        assert_eq!(program.generic_constraints().count(), 1);
    }

    #[test]
    fn parses_template_with_rule_statements() {
        let program = parse_program(
            "'{ T(V*) <- says[T](P, self[], V*), trustworthy(P). } <-- predicate(T).",
        )
        .unwrap();
        let g = program.generic_rules().next().unwrap();
        assert!(g.head.is_empty());
        assert_eq!(g.templates.len(), 1);
        match &g.templates[0].statements[0] {
            Statement::Rule(rule) => {
                assert_eq!(rule.head[0].pred, PredRef::Var("T".into()));
                assert_eq!(rule.body.len(), 2);
            }
            other => panic!("expected rule, got {other:?}"),
        }
    }

    #[test]
    fn varseq_vs_multiplication() {
        let rule = parse_rule("p(X) <- q(X), r(Y), s(X * 2, Y).").unwrap();
        let atom = rule.body[2].as_pos().unwrap();
        assert!(matches!(atom.terms[0], Term::BinOp(..)));

        let program = parse_program("'{ T(V*) <- s(V*). } <-- predicate(T).").unwrap();
        let g = program.generic_rules().next().unwrap();
        match &g.templates[0].statements[0] {
            Statement::Rule(rule) => {
                assert_eq!(rule.head[0].terms[0], Term::VarSeq("V".into()));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_quoted_predicate_constant_argument() {
        let program =
            parse_program("exportable(`path). trustworthyPerPred[`creditscore](\"CA\").").unwrap();
        let facts: Vec<_> = program.facts().collect();
        assert_eq!(facts[0].atom.terms[0], Term::Const(Value::pred("path")));
        assert_eq!(
            facts[1].atom.pred,
            PredRef::Parameterized {
                generic: "trustworthyPerPred".into(),
                param: "creditscore".into()
            }
        );
    }

    #[test]
    fn error_reports_position() {
        let err = parse_program("p(X) <- q(X)\nr(Y).").unwrap_err();
        let text = err.to_string();
        assert!(text.contains("parse error"), "{text}");
    }

    #[test]
    fn error_on_garbage() {
        assert!(parse_program("p(X) <<- q(X).").is_err());
        assert!(parse_program("p(X <- q(X).").is_err());
    }

    #[test]
    fn multi_head_rule() {
        let rule =
            parse_rule("pathvar(P), path[P, Me, N] = 1, pathlink[P, Me] = N <- link(Me, N).")
                .unwrap();
        assert_eq!(rule.head.len(), 3);
        assert_eq!(rule.head_existentials(), vec!["P".to_string()]);
    }

    #[test]
    fn display_reparse_roundtrip() {
        let source = "reachable(X, Y) <- link(X, Z), reachable(Z, Y).\n\
                      says_link(P, Q) -> principal(P).\n";
        let program = parse_program(source).unwrap();
        let reparsed = parse_program(&program.to_string()).unwrap();
        assert_eq!(program, reparsed);
    }
}
