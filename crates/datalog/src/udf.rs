//! User-defined functions (UDFs).
//!
//! LogicBlox "provides a set of APIs for hooking user-defined functions into
//! rule or constraint execution" (paper §3.2); SecureBlox uses this to
//! implement `rsa_sign`, `rsa_verify`, `hmac_sign`, `hmac_verify`,
//! `aesencrypt`, `sha1`, `serialize`, `deserialize`, and the anonymity-layer
//! operators.
//!
//! A UDF is called like an ordinary body atom.  At evaluation time the engine
//! passes the argument pattern — `Some(v)` for bound positions, `None` for
//! unbound positions — and the UDF returns zero or more full argument rows.
//! Zero rows means the literal fails (filter semantics); each returned row is
//! unified against the call site to bind the free positions.
//!
//! UDFs can be registered under an exact name (`sha1`) or as a *family*
//! (`serialize`), in which case any predicate named `family$param` — the
//! mangled form of the paper's `serialize[P]` — resolves to the family
//! implementation and receives `param` as an extra argument.

use crate::value::Value;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// The result of one UDF invocation: full argument rows, one per solution.
pub type UdfRows = Vec<Vec<Value>>;

/// Exact-name UDF implementation.
pub type UdfFn = dyn Fn(&[Option<Value>]) -> Result<UdfRows, String> + Send + Sync;

/// Family UDF implementation; the first parameter is the predicate parameter
/// (the `P` of `serialize[P]`).
pub type UdfFamilyFn = dyn Fn(&str, &[Option<Value>]) -> Result<UdfRows, String> + Send + Sync;

/// Registry of user-defined functions available to a workspace.
#[derive(Clone, Default)]
pub struct UdfRegistry {
    exact: HashMap<String, Arc<UdfFn>>,
    families: HashMap<String, Arc<UdfFamilyFn>>,
}

impl fmt::Debug for UdfRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("UdfRegistry")
            .field("exact", &self.exact.keys().collect::<Vec<_>>())
            .field("families", &self.families.keys().collect::<Vec<_>>())
            .finish()
    }
}

impl UdfRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register an exact-name UDF.
    pub fn register<F>(&mut self, name: impl Into<String>, f: F)
    where
        F: Fn(&[Option<Value>]) -> Result<UdfRows, String> + Send + Sync + 'static,
    {
        self.exact.insert(name.into(), Arc::new(f));
    }

    /// Register a family UDF resolved for any `family$param` predicate.
    pub fn register_family<F>(&mut self, family: impl Into<String>, f: F)
    where
        F: Fn(&str, &[Option<Value>]) -> Result<UdfRows, String> + Send + Sync + 'static,
    {
        self.families.insert(family.into(), Arc::new(f));
    }

    /// True if `name` resolves to a registered UDF.
    pub fn is_udf(&self, name: &str) -> bool {
        if self.exact.contains_key(name) {
            return true;
        }
        if let Some((family, _param)) = name.split_once('$') {
            return self.families.contains_key(family);
        }
        self.families.contains_key(name)
    }

    /// Invoke the UDF `name` with the given argument pattern.
    pub fn call(&self, name: &str, args: &[Option<Value>]) -> Result<UdfRows, String> {
        if let Some(f) = self.exact.get(name) {
            return f(args);
        }
        if let Some((family, param)) = name.split_once('$') {
            if let Some(f) = self.families.get(family) {
                return f(param, args);
            }
        }
        if let Some(f) = self.families.get(name) {
            return f("", args);
        }
        Err(format!("unknown user-defined function {name}"))
    }

    /// Names of all registered exact UDFs (diagnostics).
    pub fn exact_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.exact.keys().cloned().collect();
        names.sort();
        names
    }

    /// Merge another registry into this one (later registrations win).
    pub fn merge(&mut self, other: &UdfRegistry) {
        for (name, f) in &other.exact {
            self.exact.insert(name.clone(), Arc::clone(f));
        }
        for (name, f) in &other.families {
            self.families.insert(name.clone(), Arc::clone(f));
        }
    }
}

/// Helper: require that argument `index` is bound, with a readable error.
pub fn require_bound(args: &[Option<Value>], index: usize, udf: &str) -> Result<Value, String> {
    args.get(index)
        .and_then(|v| v.clone())
        .ok_or_else(|| format!("{udf}: argument {index} must be bound"))
}

/// Standard built-in UDFs that every workspace gets: arithmetic-free helpers
/// that the paper's listings rely on.
pub fn standard_udfs() -> UdfRegistry {
    let mut registry = UdfRegistry::new();

    // string_concat(A, B, Out): concatenates two bound strings.
    registry.register("string_concat", |args| {
        let a = require_bound(args, 0, "string_concat")?;
        let b = require_bound(args, 1, "string_concat")?;
        let out = format!(
            "{}{}",
            a.as_str().ok_or("string_concat: arg 0 must be a string")?,
            b.as_str().ok_or("string_concat: arg 1 must be a string")?
        );
        Ok(vec![vec![a, b, Value::str(out)]])
    });

    // int_to_string(I, S)
    registry.register("int_to_string", |args| {
        let i = require_bound(args, 0, "int_to_string")?;
        let value = i.as_int().ok_or("int_to_string: arg 0 must be an int")?;
        Ok(vec![vec![i, Value::str(value.to_string())]])
    });

    registry
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_registration_and_call() {
        let mut registry = UdfRegistry::new();
        registry.register("double", |args| {
            let x = require_bound(args, 0, "double")?;
            let v = x.as_int().ok_or("not an int")?;
            Ok(vec![vec![x, Value::Int(v * 2)]])
        });
        assert!(registry.is_udf("double"));
        assert!(!registry.is_udf("triple"));
        let rows = registry
            .call("double", &[Some(Value::Int(4)), None])
            .unwrap();
        assert_eq!(rows, vec![vec![Value::Int(4), Value::Int(8)]]);
    }

    #[test]
    fn family_registration_and_mangled_call() {
        let mut registry = UdfRegistry::new();
        registry.register_family("serialize", |param, args| {
            let v = require_bound(args, 0, "serialize")?;
            Ok(vec![vec![v, Value::str(format!("{param}!"))]])
        });
        assert!(registry.is_udf("serialize$path"));
        assert!(registry.is_udf("serialize"));
        let rows = registry
            .call("serialize$path", &[Some(Value::Int(1)), None])
            .unwrap();
        assert_eq!(rows[0][1], Value::str("path!"));
    }

    #[test]
    fn unknown_udf_errors() {
        let registry = UdfRegistry::new();
        assert!(registry.call("nope", &[]).is_err());
    }

    #[test]
    fn filter_semantics_possible() {
        let mut registry = UdfRegistry::new();
        registry.register("is_even", |args| {
            let x = require_bound(args, 0, "is_even")?;
            if x.as_int().map_or(false, |v| v % 2 == 0) {
                Ok(vec![vec![x]])
            } else {
                Ok(vec![])
            }
        });
        assert_eq!(
            registry
                .call("is_even", &[Some(Value::Int(2))])
                .unwrap()
                .len(),
            1
        );
        assert_eq!(
            registry
                .call("is_even", &[Some(Value::Int(3))])
                .unwrap()
                .len(),
            0
        );
    }

    #[test]
    fn require_bound_errors_on_unbound() {
        let err = require_bound(&[None], 0, "f").unwrap_err();
        assert!(err.contains("must be bound"));
    }

    #[test]
    fn standard_udfs_work() {
        let registry = standard_udfs();
        let rows = registry
            .call(
                "string_concat",
                &[Some(Value::str("says$")), Some(Value::str("path")), None],
            )
            .unwrap();
        assert_eq!(rows[0][2], Value::str("says$path"));
        let rows = registry
            .call("int_to_string", &[Some(Value::Int(7)), None])
            .unwrap();
        assert_eq!(rows[0][1], Value::str("7"));
    }

    #[test]
    fn merge_combines_registries() {
        let mut a = UdfRegistry::new();
        a.register("f", |_| Ok(vec![]));
        let mut b = UdfRegistry::new();
        b.register("g", |_| Ok(vec![]));
        b.register_family("fam", |_, _| Ok(vec![]));
        a.merge(&b);
        assert!(a.is_udf("f"));
        assert!(a.is_udf("g"));
        assert!(a.is_udf("fam$x"));
    }
}
