//! Property-based tests for the simulated network substrate.
//!
//! The figure harness derives every communication-overhead and latency number
//! from this layer, so its accounting has to be exact: delivery order follows
//! virtual time, every sent byte is attributed to exactly one sender and one
//! receiver, and the convergence CDF is a proper distribution function.

use proptest::prelude::*;
use secureblox_net::{LatencyModel, Message, MessageKind, NetworkStats, NodeId, SimNetwork};
use std::collections::BTreeMap;
use std::time::Duration;

const KINDS: [MessageKind; 4] = [
    MessageKind::Update,
    MessageKind::AnonForward,
    MessageKind::AnonBackward,
    MessageKind::Bootstrap,
];

fn arb_sends(
    nodes: u32,
    count: usize,
) -> impl Strategy<Value = Vec<(u32, u32, usize, usize, u64)>> {
    // (from, to, payload_len, kind_index, send_time)
    proptest::collection::vec(
        (
            0..nodes,
            0..nodes,
            0usize..4096,
            0usize..KINDS.len(),
            0u64..1_000_000,
        ),
        0..count,
    )
}

proptest! {
    /// Delay is monotone in wire size and never below the propagation floor.
    #[test]
    fn latency_is_monotone_in_size(prop_us in 0u64..10_000, bw in 1u64..2_000_000_000,
                                   a in 0usize..1_000_000, b in 0usize..1_000_000) {
        let model = LatencyModel {
            propagation: Duration::from_micros(prop_us),
            bandwidth_bytes_per_sec: bw,
        };
        let (small, large) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(model.delay(small) <= model.delay(large));
        prop_assert!(model.delay(small) >= Duration::from_micros(prop_us));
    }

    /// Every message sent is delivered exactly once, deliveries come out in
    /// non-decreasing virtual-time order, and no delivery happens before its
    /// send time plus the propagation floor.
    #[test]
    fn every_send_is_delivered_once_in_time_order(sends in arb_sends(8, 64)) {
        let mut network = SimNetwork::new(8, LatencyModel::default());
        let mut expected_payload_bytes: usize = 0;
        for &(from, to, len, kind, at) in &sends {
            let msg = Message::new(NodeId(from), NodeId(to), KINDS[kind], vec![0xAB; len]);
            let deliver_at = network.send(msg, at);
            prop_assert!(deliver_at >= at + LatencyModel::default().propagation.as_nanos() as u64);
            expected_payload_bytes += len;
        }
        prop_assert_eq!(network.in_flight(), sends.len());

        let mut last_time = 0u64;
        let mut delivered = 0usize;
        let mut delivered_payload = 0usize;
        while let Some((t, msg)) = network.next_delivery() {
            prop_assert!(t >= last_time);
            last_time = t;
            delivered += 1;
            delivered_payload += msg.payload.len();
        }
        prop_assert_eq!(delivered, sends.len());
        prop_assert_eq!(delivered_payload, expected_payload_bytes);
        prop_assert!(network.is_idle());
    }

    /// The per-node traffic statistics partition the total: the sum over all
    /// nodes of bytes_sent equals the total wire bytes, the same holds for
    /// bytes_received, and per-kind byte counts sum to the total.
    #[test]
    fn stats_partition_total_traffic(sends in arb_sends(6, 48)) {
        let mut network = SimNetwork::new(6, LatencyModel::default());
        let mut by_sender: BTreeMap<u32, usize> = BTreeMap::new();
        let mut total_wire = 0usize;
        for &(from, to, len, kind, at) in &sends {
            let msg = Message::new(NodeId(from), NodeId(to), KINDS[kind], vec![0u8; len]);
            total_wire += msg.wire_size();
            *by_sender.entry(from).or_default() += msg.wire_size();
            network.send(msg, at);
        }
        let stats = network.stats();
        let sent_sum: usize = stats.nodes().iter().map(|n| n.bytes_sent).sum();
        let recv_sum: usize = stats.nodes().iter().map(|n| n.bytes_received).sum();
        prop_assert_eq!(sent_sum, total_wire);
        prop_assert_eq!(recv_sum, total_wire);
        prop_assert_eq!(stats.total_bytes(), total_wire);
        for (node, bytes) in by_sender {
            prop_assert_eq!(stats.node(NodeId(node)).bytes_sent, bytes);
        }
        let kind_sum: usize = KINDS.iter().map(|&k| stats.bytes_for_kind(k)).sum();
        prop_assert_eq!(kind_sum, total_wire);
    }

    /// Untracked (bootstrap) scheduling never shows up in the overhead
    /// statistics but is still delivered.
    #[test]
    fn untracked_messages_are_invisible_to_stats(count in 0usize..32, len in 0usize..512) {
        let mut network = SimNetwork::new(4, LatencyModel::default());
        for i in 0..count {
            network.schedule_untracked(
                Message::new(NodeId(0), NodeId(1), MessageKind::Bootstrap, vec![0u8; len]),
                i as u64,
            );
        }
        prop_assert_eq!(network.stats().total_bytes(), 0);
        let mut delivered = 0;
        while network.next_delivery().is_some() {
            delivered += 1;
        }
        prop_assert_eq!(delivered, count);
    }

    /// The average-per-node-KB figure reported for Figures 6 and 12 is the
    /// arithmetic mean of the per-node sent traffic.
    #[test]
    fn average_per_node_kb_is_the_mean(sends in arb_sends(5, 40)) {
        let mut stats = NetworkStats::new(5);
        for &(from, to, len, kind, _) in &sends {
            stats.record_send(NodeId(from), NodeId(to), len, KINDS[kind]);
        }
        let mean_kb = stats.nodes().iter().map(|n| n.kilobytes_sent()).sum::<f64>() / 5.0;
        prop_assert!((stats.average_per_node_kb() - mean_kb).abs() < 1e-9);
    }
}

// ---------------------------------------------------------------------------
// Timing statistics / convergence CDF
// ---------------------------------------------------------------------------

use secureblox_net::TimingStats;

proptest! {
    /// The convergence CDF is monotone non-decreasing in both coordinates and
    /// ends at fraction 1.0 once every node has converged.
    #[test]
    fn convergence_cdf_is_monotone(times in proptest::collection::vec(0u64..1_000_000, 1..24),
                                   samples in 2usize..50) {
        let nodes = times.len();
        let mut timing = TimingStats::new(nodes);
        for (i, &t) in times.iter().enumerate() {
            timing.record_transaction(NodeId(i as u32), Duration::from_micros(10), t);
        }
        let cdf = timing.convergence_cdf(samples);
        prop_assert!(!cdf.is_empty());
        let mut last_t = 0u64;
        let mut last_f = 0.0f64;
        for &(t, f) in &cdf {
            prop_assert!(t >= last_t);
            prop_assert!(f >= last_f - 1e-12);
            prop_assert!((0.0..=1.0 + 1e-12).contains(&f));
            last_t = t;
            last_f = f;
        }
        let (_, final_fraction) = *cdf.last().unwrap();
        prop_assert!((final_fraction - 1.0).abs() < 1e-9);
    }

    /// The average transaction duration equals the arithmetic mean of the
    /// recorded durations, and the fixpoint time is the maximum completion.
    #[test]
    fn timing_aggregates_match_reference(durations in proptest::collection::vec((0u32..8, 1u64..100_000), 1..64)) {
        let mut timing = TimingStats::new(8);
        let mut total = Duration::ZERO;
        let mut max_finish = 0u64;
        for (i, &(node, micros)) in durations.iter().enumerate() {
            let d = Duration::from_micros(micros);
            let finish = (i as u64 + 1) * 1_000 + micros;
            timing.record_transaction(NodeId(node), d, finish);
            total += d;
            max_finish = max_finish.max(finish);
        }
        let mean = total / durations.len() as u32;
        let got = timing.average_transaction_duration();
        let diff = if got > mean { got - mean } else { mean - got };
        prop_assert!(diff <= Duration::from_nanos(1000));
        prop_assert_eq!(timing.total_transactions(), durations.len());
        prop_assert_eq!(timing.fixpoint_time(), max_finish);
    }
}
