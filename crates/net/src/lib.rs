//! # secureblox-net
//!
//! Simulated distributed substrate for the SecureBlox reproduction.
//!
//! The paper evaluates SecureBlox on a 36-machine cluster whose nodes
//! exchange UDP messages (§5.1, §8).  This crate replaces that testbed with a
//! **discrete-event network simulation**: nodes are identified by
//! [`NodeId`]s, messages carry opaque byte payloads, a [`LatencyModel`]
//! converts message sizes into propagation + transmission delays, and a
//! [`SimNetwork`] priority queue delivers messages in virtual-time order
//! while recording the per-node traffic statistics that the paper's Figures 6
//! and 12 report.
//!
//! Compute time is *not* simulated: the distributed runtime in the
//! `secureblox` crate measures the real wall-clock duration of each local
//! transaction (crypto included) and advances the owning node's virtual clock
//! by that amount, so N simulated nodes appear to run in parallel exactly as
//! the paper's cluster nodes did.  DESIGN.md documents this substitution.

pub mod message;
pub mod node;
pub mod sim;
pub mod stats;
pub mod topology;

pub use message::{Message, MessageKind};
pub use node::{NodeId, NodeInfo};
pub use sim::{record_message_latency, LatencyModel, LinkLanes, SimNetwork, VirtualTime};
pub use stats::{NetworkStats, NodeTraffic, TimingStats};
pub use topology::Topology;
