//! Topology generators for simulated deployments.
//!
//! The paper's path-vector evaluation (§8.1) uses random graphs with an
//! average node degree of three.  This module provides that generator plus a
//! few regular topologies (ring, star, full mesh, grid) that the ablation
//! benches use to show how the protocol's convergence behaviour and
//! communication overhead depend on the input graph rather than on the
//! security scheme.
//!
//! All generators return **undirected** edges as `(a, b)` pairs with
//! `a < b`, without duplicates, over the node indices `0..num_nodes`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;

/// A family of graph topologies over `num_nodes` nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Topology {
    /// A single cycle: node `i` connects to node `(i + 1) mod n`.
    Ring,
    /// Node 0 connects to every other node.
    Star,
    /// Every pair of nodes is connected.
    FullMesh,
    /// A near-square grid with row-major adjacency.
    Grid,
    /// A connected random graph (ring plus random chords) with the given
    /// average degree — the paper's workload when `average_degree == 3`.
    Random {
        /// Target average node degree (the ring already contributes 2).
        average_degree: usize,
    },
}

impl Topology {
    /// The paper's input graphs: random, average degree three.
    pub fn paper_default() -> Self {
        Topology::Random { average_degree: 3 }
    }

    /// A short label for benchmark and figure output.
    pub fn label(&self) -> String {
        match self {
            Topology::Ring => "ring".to_string(),
            Topology::Star => "star".to_string(),
            Topology::FullMesh => "full-mesh".to_string(),
            Topology::Grid => "grid".to_string(),
            Topology::Random { average_degree } => format!("random-deg{average_degree}"),
        }
    }

    /// Generate the undirected edge set for `num_nodes` nodes.  `seed` only
    /// affects [`Topology::Random`]; the regular topologies are deterministic.
    pub fn edges(&self, num_nodes: usize, seed: u64) -> Vec<(usize, usize)> {
        if num_nodes < 2 {
            return Vec::new();
        }
        match self {
            Topology::Ring => ring(num_nodes),
            Topology::Star => (1..num_nodes).map(|i| (0, i)).collect(),
            Topology::FullMesh => {
                let mut edges = Vec::with_capacity(num_nodes * (num_nodes - 1) / 2);
                for a in 0..num_nodes {
                    for b in (a + 1)..num_nodes {
                        edges.push((a, b));
                    }
                }
                edges
            }
            Topology::Grid => grid(num_nodes),
            Topology::Random { average_degree } => random(num_nodes, *average_degree, seed),
        }
    }

    /// The average node degree of the generated graph.
    pub fn average_degree(&self, num_nodes: usize, seed: u64) -> f64 {
        if num_nodes == 0 {
            return 0.0;
        }
        2.0 * self.edges(num_nodes, seed).len() as f64 / num_nodes as f64
    }
}

fn ring(num_nodes: usize) -> Vec<(usize, usize)> {
    (0..num_nodes)
        .map(|i| {
            let next = (i + 1) % num_nodes;
            (i.min(next), i.max(next))
        })
        .collect::<BTreeSet<_>>()
        .into_iter()
        .collect()
}

fn grid(num_nodes: usize) -> Vec<(usize, usize)> {
    let cols = (num_nodes as f64).sqrt().ceil() as usize;
    let mut edges = Vec::new();
    for i in 0..num_nodes {
        let (row, col) = (i / cols, i % cols);
        // Right neighbour.
        if col + 1 < cols && i + 1 < num_nodes {
            edges.push((i, i + 1));
        }
        // Down neighbour.
        if i + cols < num_nodes {
            edges.push((i, i + cols));
        }
        let _ = row;
    }
    edges
}

fn random(num_nodes: usize, average_degree: usize, seed: u64) -> Vec<(usize, usize)> {
    let mut rng = StdRng::seed_from_u64(seed);
    // Start from a ring so the graph is always connected.
    let mut edges: BTreeSet<(usize, usize)> = ring(num_nodes).into_iter().collect();
    let target_edges = num_nodes * average_degree / 2;
    let max_edges = num_nodes * (num_nodes - 1) / 2;
    let target_edges = target_edges.min(max_edges);
    let mut attempts = 0usize;
    while edges.len() < target_edges && attempts < target_edges * 50 {
        attempts += 1;
        let a = rng.gen_range(0..num_nodes);
        let b = rng.gen_range(0..num_nodes);
        if a == b {
            continue;
        }
        edges.insert((a.min(b), a.max(b)));
    }
    edges.into_iter().collect()
}

/// True if the undirected graph given by `edges` connects all `num_nodes`
/// nodes.
pub fn is_connected(num_nodes: usize, edges: &[(usize, usize)]) -> bool {
    if num_nodes == 0 {
        return true;
    }
    let mut adjacency = vec![Vec::new(); num_nodes];
    for &(a, b) in edges {
        if a >= num_nodes || b >= num_nodes {
            return false;
        }
        adjacency[a].push(b);
        adjacency[b].push(a);
    }
    let mut visited = vec![false; num_nodes];
    let mut stack = vec![0usize];
    visited[0] = true;
    let mut seen = 1usize;
    while let Some(node) = stack.pop() {
        for &next in &adjacency[node] {
            if !visited[next] {
                visited[next] = true;
                seen += 1;
                stack.push(next);
            }
        }
    }
    seen == num_nodes
}

/// The eccentricity-free diameter bound used in tests: the longest shortest
/// path between any two nodes (hop count), or `None` if disconnected.
pub fn diameter(num_nodes: usize, edges: &[(usize, usize)]) -> Option<usize> {
    if num_nodes == 0 {
        return Some(0);
    }
    let mut adjacency = vec![Vec::new(); num_nodes];
    for &(a, b) in edges {
        adjacency[a].push(b);
        adjacency[b].push(a);
    }
    let mut worst = 0usize;
    for start in 0..num_nodes {
        let mut dist = vec![usize::MAX; num_nodes];
        dist[start] = 0;
        let mut queue = std::collections::VecDeque::from([start]);
        while let Some(node) = queue.pop_front() {
            for &next in &adjacency[node] {
                if dist[next] == usize::MAX {
                    dist[next] = dist[node] + 1;
                    queue.push_back(next);
                }
            }
        }
        let eccentricity = *dist.iter().max().expect("non-empty");
        if eccentricity == usize::MAX {
            return None;
        }
        worst = worst.max(eccentricity);
    }
    Some(worst)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_is_a_single_cycle() {
        let edges = Topology::Ring.edges(6, 0);
        assert_eq!(edges.len(), 6);
        assert!(is_connected(6, &edges));
        assert_eq!(Topology::Ring.average_degree(6, 0), 2.0);
        assert_eq!(diameter(6, &edges), Some(3));
    }

    #[test]
    fn star_connects_everything_through_the_hub() {
        let edges = Topology::Star.edges(8, 0);
        assert_eq!(edges.len(), 7);
        assert!(is_connected(8, &edges));
        assert_eq!(diameter(8, &edges), Some(2));
        assert!(edges.iter().all(|&(a, _)| a == 0));
    }

    #[test]
    fn full_mesh_has_all_pairs_and_diameter_one() {
        let edges = Topology::FullMesh.edges(5, 0);
        assert_eq!(edges.len(), 10);
        assert_eq!(diameter(5, &edges), Some(1));
    }

    #[test]
    fn grid_is_connected_for_non_square_counts() {
        for n in [2usize, 3, 5, 7, 9, 12, 16] {
            let edges = Topology::Grid.edges(n, 0);
            assert!(
                is_connected(n, &edges),
                "grid of {n} nodes should be connected"
            );
        }
    }

    #[test]
    fn random_graphs_are_connected_and_near_target_degree() {
        for seed in 0..5 {
            let topology = Topology::Random { average_degree: 3 };
            let edges = topology.edges(24, seed);
            assert!(is_connected(24, &edges));
            let degree = topology.average_degree(24, seed);
            assert!((2.0..=3.5).contains(&degree), "degree {degree}");
            // Deterministic per seed.
            assert_eq!(edges, topology.edges(24, seed));
        }
        assert_ne!(
            Topology::Random { average_degree: 3 }.edges(24, 1),
            Topology::Random { average_degree: 3 }.edges(24, 2)
        );
    }

    #[test]
    fn degenerate_sizes_are_safe() {
        for topology in [
            Topology::Ring,
            Topology::Star,
            Topology::FullMesh,
            Topology::Grid,
            Topology::paper_default(),
        ] {
            assert!(topology.edges(0, 0).is_empty());
            assert!(topology.edges(1, 0).is_empty());
        }
        assert!(is_connected(0, &[]));
        assert!(is_connected(1, &[]));
        assert_eq!(diameter(1, &[]), Some(0));
        assert_eq!(diameter(2, &[]), None);
    }

    #[test]
    fn labels_are_distinct() {
        let labels: std::collections::BTreeSet<String> = [
            Topology::Ring,
            Topology::Star,
            Topology::FullMesh,
            Topology::Grid,
            Topology::Random { average_degree: 3 },
            Topology::Random { average_degree: 5 },
        ]
        .iter()
        .map(|t| t.label())
        .collect();
        assert_eq!(labels.len(), 6);
    }
}
