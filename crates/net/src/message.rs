//! Network messages.

use crate::node::NodeId;
use bytes::Bytes;

/// A message exchanged between simulated nodes.
///
/// The payload is opaque at this layer: the SecureBlox runtime serializes
/// (and optionally signs and encrypts) batches of tuples into it.  `kind`
/// distinguishes the logical channel (`says`, `anon_export`, …) purely for
/// statistics and debugging.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Message {
    pub from: NodeId,
    pub to: NodeId,
    pub kind: MessageKind,
    pub payload: Bytes,
}

/// Logical channel of a message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MessageKind {
    /// An authenticated (and possibly encrypted) ordered batch of
    /// assert/retract deltas — the unified update stream carrying both newly
    /// derived and withdrawn `says` tuples.
    Update,
    /// An onion-wrapped anonymity-circuit cell travelling forward.
    AnonForward,
    /// An onion-wrapped anonymity-circuit cell travelling backward.
    AnonBackward,
    /// Initial base-fact distribution (not counted as protocol overhead).
    Bootstrap,
    /// A flow-control credit grant travelling from a receiver back to a
    /// sender: the payload is the number of update-stream deltas the receiver
    /// has drained from its per-link queue, returning that much send window
    /// to the sender's outbox (credit-based backpressure).
    Credit,
}

impl MessageKind {
    /// Stable lowercase label, used in telemetry metric names.
    pub fn label(self) -> &'static str {
        match self {
            MessageKind::Update => "update",
            MessageKind::AnonForward => "anon_forward",
            MessageKind::AnonBackward => "anon_backward",
            MessageKind::Bootstrap => "bootstrap",
            MessageKind::Credit => "credit",
        }
    }
}

/// Encode a credit-grant payload: the number of drained deltas, big-endian.
pub fn encode_credit(deltas: u64) -> Vec<u8> {
    deltas.to_be_bytes().to_vec()
}

/// Decode a credit-grant payload.  `None` for malformed (non-8-byte)
/// payloads, which receivers drop rather than trusting.
pub fn decode_credit(payload: &[u8]) -> Option<u64> {
    Some(u64::from_be_bytes(payload.try_into().ok()?))
}

/// Fixed per-message header overhead, approximating the paper's UDP/IP
/// headers plus a small SecureBlox envelope (sender, receiver, predicate tag).
pub const HEADER_OVERHEAD_BYTES: usize = 48;

impl Message {
    /// Create a message.
    pub fn new(from: NodeId, to: NodeId, kind: MessageKind, payload: impl Into<Bytes>) -> Self {
        Message {
            from,
            to,
            kind,
            payload: payload.into(),
        }
    }

    /// Total on-the-wire size in bytes (payload plus header overhead).
    pub fn wire_size(&self) -> usize {
        self.payload.len() + HEADER_OVERHEAD_BYTES
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn credit_payload_roundtrip() {
        assert_eq!(decode_credit(&encode_credit(0)), Some(0));
        assert_eq!(decode_credit(&encode_credit(u64::MAX)), Some(u64::MAX));
        assert_eq!(decode_credit(&encode_credit(12345)), Some(12345));
        assert_eq!(decode_credit(b"short"), None);
        assert_eq!(decode_credit(b"nine bytes!"), None);
    }

    #[test]
    fn wire_size_includes_header() {
        let msg = Message::new(NodeId(0), NodeId(1), MessageKind::Update, vec![0u8; 100]);
        assert_eq!(msg.wire_size(), 100 + HEADER_OVERHEAD_BYTES);
        let empty = Message::new(NodeId(0), NodeId(1), MessageKind::Bootstrap, Vec::new());
        assert_eq!(empty.wire_size(), HEADER_OVERHEAD_BYTES);
    }
}
