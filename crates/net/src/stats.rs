//! Per-node traffic and timing statistics.
//!
//! These are the raw measurements behind the paper's evaluation metrics
//! (§8.1): per-node communication overhead in KB, average transaction
//! duration, fixpoint latency, and the cumulative fraction of converged
//! nodes over time.

use crate::message::MessageKind;
use crate::node::NodeId;
use crate::sim::VirtualTime;
use std::collections::HashMap;
use std::time::Duration;

/// Traffic counters for one node.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NodeTraffic {
    pub bytes_sent: usize,
    pub bytes_received: usize,
    pub messages_sent: usize,
    pub messages_received: usize,
}

impl NodeTraffic {
    /// Total traffic attributable to this node, in bytes.
    ///
    /// **Sent bytes only — received bytes are intentionally excluded.**  The
    /// paper reports per-node overhead as the bandwidth a node *originates*;
    /// every received byte is some other node's sent byte, so summing both
    /// directions would double-count each message at the deployment level
    /// (`NetworkStats::total_bytes` sums this per-node value).  Callers that
    /// want the receive direction read [`NodeTraffic::bytes_received`]
    /// directly, or the `net_node_bytes_received{node="..."}` gauge published
    /// by [`NetworkStats::publish_to_registry`].
    pub fn total_bytes(&self) -> usize {
        self.bytes_sent
    }

    /// Sent bytes expressed in kilobytes (the unit of Figures 6 and 12).
    pub fn kilobytes_sent(&self) -> f64 {
        self.bytes_sent as f64 / 1024.0
    }
}

/// Traffic counters for one directed link.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkTraffic {
    pub messages: usize,
    pub bytes: usize,
}

/// Traffic statistics for a whole deployment.
#[derive(Debug, Clone, Default)]
pub struct NetworkStats {
    per_node: Vec<NodeTraffic>,
    per_kind: HashMap<MessageKind, LinkTraffic>,
    per_link: HashMap<(NodeId, NodeId), LinkTraffic>,
}

impl NetworkStats {
    /// Statistics for `nodes` nodes.
    pub fn new(nodes: usize) -> Self {
        NetworkStats {
            per_node: vec![NodeTraffic::default(); nodes],
            per_kind: HashMap::new(),
            per_link: HashMap::new(),
        }
    }

    /// Record one message send.
    pub fn record_send(&mut self, from: NodeId, to: NodeId, wire_size: usize, kind: MessageKind) {
        if let Some(sender) = self.per_node.get_mut(from.index()) {
            sender.bytes_sent += wire_size;
            sender.messages_sent += 1;
        }
        if let Some(receiver) = self.per_node.get_mut(to.index()) {
            receiver.bytes_received += wire_size;
            receiver.messages_received += 1;
        }
        let kind_traffic = self.per_kind.entry(kind).or_default();
        kind_traffic.messages += 1;
        kind_traffic.bytes += wire_size;
        let link = self.per_link.entry((from, to)).or_default();
        link.messages += 1;
        link.bytes += wire_size;
    }

    /// Fold another statistics shard into this one.  The reactor executor
    /// gives every node task its own [`NetworkStats`] shard (recorded on the
    /// sender side, lock-free) and merges them at the end of the run; the
    /// merged result is indistinguishable from one shared recorder.
    pub fn merge(&mut self, other: &NetworkStats) {
        if self.per_node.len() < other.per_node.len() {
            self.per_node
                .resize(other.per_node.len(), NodeTraffic::default());
        }
        for (mine, theirs) in self.per_node.iter_mut().zip(&other.per_node) {
            mine.bytes_sent += theirs.bytes_sent;
            mine.bytes_received += theirs.bytes_received;
            mine.messages_sent += theirs.messages_sent;
            mine.messages_received += theirs.messages_received;
        }
        for (&kind, traffic) in &other.per_kind {
            let mine = self.per_kind.entry(kind).or_default();
            mine.messages += traffic.messages;
            mine.bytes += traffic.bytes;
        }
        for (&link, traffic) in &other.per_link {
            let mine = self.per_link.entry(link).or_default();
            mine.messages += traffic.messages;
            mine.bytes += traffic.bytes;
        }
    }

    /// Traffic counters for one directed link.
    pub fn link(&self, from: NodeId, to: NodeId) -> LinkTraffic {
        self.per_link.get(&(from, to)).copied().unwrap_or_default()
    }

    /// The `k` links that carried the most messages, busiest first (ties
    /// broken by bytes, then by link id for determinism).  Used to name the
    /// hot spots when a run exceeds its message budget without converging.
    pub fn busiest_links(&self, k: usize) -> Vec<(NodeId, NodeId, LinkTraffic)> {
        let mut links: Vec<(NodeId, NodeId, LinkTraffic)> = self
            .per_link
            .iter()
            .map(|(&(from, to), &traffic)| (from, to, traffic))
            .collect();
        links.sort_by(|a, b| {
            (b.2.messages, b.2.bytes)
                .cmp(&(a.2.messages, a.2.bytes))
                .then_with(|| (a.0 .0, a.1 .0).cmp(&(b.0 .0, b.1 .0)))
        });
        links.truncate(k);
        links
    }

    /// Counters for one node.
    pub fn node(&self, id: NodeId) -> &NodeTraffic {
        &self.per_node[id.index()]
    }

    /// Counters for every node.
    pub fn nodes(&self) -> &[NodeTraffic] {
        &self.per_node
    }

    /// Total bytes sent across the deployment.
    pub fn total_bytes(&self) -> usize {
        self.per_node.iter().map(|n| n.bytes_sent).sum()
    }

    /// Average per-node overhead in kilobytes — the metric of Figures 6 & 12.
    pub fn average_per_node_kb(&self) -> f64 {
        if self.per_node.is_empty() {
            return 0.0;
        }
        self.per_node
            .iter()
            .map(|n| n.kilobytes_sent())
            .sum::<f64>()
            / self.per_node.len() as f64
    }

    /// Bytes attributed to a message kind.
    pub fn bytes_for_kind(&self, kind: MessageKind) -> usize {
        self.per_kind.get(&kind).map_or(0, |t| t.bytes)
    }

    /// Messages of a given kind.  Backs the data-plane / control-plane split
    /// of the message-budget guard and its regression test: credit grants are
    /// control traffic and must not count against a convergence budget.
    pub fn messages_for_kind(&self, kind: MessageKind) -> usize {
        self.per_kind.get(&kind).map_or(0, |t| t.messages)
    }

    /// Publish these statistics into the global telemetry registry as
    /// labelled gauges — `net_node_bytes_sent{node="i"}`,
    /// `net_node_bytes_received{node="i"}` (the receive direction
    /// [`NodeTraffic::total_bytes`] deliberately excludes),
    /// `net_node_messages_{sent,received}{node="i"}`, and
    /// `net_bytes_by_kind{kind="..."}`.  This struct stays the API of
    /// record; the gauges are a view for exporters, refreshed on each call
    /// (per-node label names are interned once per node, so this is not for
    /// per-send hot paths — `Deployment::report` calls it once per run).
    pub fn publish_to_registry(&self) {
        let registry = secureblox_telemetry::registry();
        for (index, traffic) in self.per_node.iter().enumerate() {
            registry
                .gauge(&format!("net_node_bytes_sent{{node=\"{index}\"}}"))
                .set(traffic.bytes_sent as i64);
            registry
                .gauge(&format!("net_node_bytes_received{{node=\"{index}\"}}"))
                .set(traffic.bytes_received as i64);
            registry
                .gauge(&format!("net_node_messages_sent{{node=\"{index}\"}}"))
                .set(traffic.messages_sent as i64);
            registry
                .gauge(&format!("net_node_messages_received{{node=\"{index}\"}}"))
                .set(traffic.messages_received as i64);
        }
        for (kind, traffic) in &self.per_kind {
            registry
                .gauge(&format!("net_bytes_by_kind{{kind=\"{}\"}}", kind.label()))
                .set(traffic.bytes as i64);
        }
    }
}

/// Timing statistics for a whole deployment run.
#[derive(Debug, Clone, Default)]
pub struct TimingStats {
    /// Wall-clock duration of every committed transaction, per node.
    transaction_durations: Vec<Vec<Duration>>,
    /// Virtual time at which each node last finished processing a batch.
    last_activity: Vec<VirtualTime>,
    /// Virtual times at which transactions completed (used for the hash-join
    /// completion CDFs at the initiator).
    completion_times: Vec<Vec<VirtualTime>>,
    /// Batches rejected by constraint violations, per node.
    rejected_batches: Vec<usize>,
    /// Batches rolled back by functional-dependency conflicts (e.g. duplicate
    /// advertisements of the same path entity), per node.
    conflicting_batches: Vec<usize>,
    /// Retraction deltas applied (verified and DRed-maintained), per node.
    retractions_applied: Vec<usize>,
}

impl TimingStats {
    /// Timing statistics for `nodes` nodes.
    pub fn new(nodes: usize) -> Self {
        TimingStats {
            transaction_durations: vec![Vec::new(); nodes],
            last_activity: vec![0; nodes],
            completion_times: vec![Vec::new(); nodes],
            rejected_batches: vec![0; nodes],
            conflicting_batches: vec![0; nodes],
            retractions_applied: vec![0; nodes],
        }
    }

    /// Fold another timing shard into this one.  Per-node series concatenate
    /// (each reactor task only ever records rows for its own node, so the
    /// within-node order is preserved); counters add; activity watermarks
    /// take the maximum.
    pub fn merge(&mut self, other: TimingStats) {
        let nodes = self
            .transaction_durations
            .len()
            .max(other.last_activity.len());
        if self.transaction_durations.len() < nodes {
            *self = {
                let mut grown = TimingStats::new(nodes);
                grown.merge(std::mem::take(self));
                grown
            };
        }
        for (index, durations) in other.transaction_durations.into_iter().enumerate() {
            self.transaction_durations[index].extend(durations);
        }
        for (index, completions) in other.completion_times.into_iter().enumerate() {
            self.completion_times[index].extend(completions);
        }
        for (index, &activity) in other.last_activity.iter().enumerate() {
            self.last_activity[index] = self.last_activity[index].max(activity);
        }
        for (index, &count) in other.rejected_batches.iter().enumerate() {
            self.rejected_batches[index] += count;
        }
        for (index, &count) in other.conflicting_batches.iter().enumerate() {
            self.conflicting_batches[index] += count;
        }
        for (index, &count) in other.retractions_applied.iter().enumerate() {
            self.retractions_applied[index] += count;
        }
    }

    /// Record a committed transaction on `node` finishing at virtual time
    /// `finished_at` after running for `duration` of real compute time.
    pub fn record_transaction(
        &mut self,
        node: NodeId,
        duration: Duration,
        finished_at: VirtualTime,
    ) {
        self.transaction_durations[node.index()].push(duration);
        self.completion_times[node.index()].push(finished_at);
        self.last_activity[node.index()] = self.last_activity[node.index()].max(finished_at);
    }

    /// Record a batch rejected by a constraint violation (a security policy
    /// refusing the batch: unknown principal, bad signature, missing write
    /// access, forbidden delegation, undecryptable payload).
    pub fn record_rejection(&mut self, node: NodeId, finished_at: VirtualTime) {
        self.rejected_batches[node.index()] += 1;
        self.last_activity[node.index()] = self.last_activity[node.index()].max(finished_at);
    }

    /// Record a batch rolled back by a functional-dependency conflict — a
    /// data-level duplicate (e.g. the same path entity advertised along two
    /// different branches), not a security decision.
    pub fn record_conflict(&mut self, node: NodeId, finished_at: VirtualTime) {
        self.conflicting_batches[node.index()] += 1;
        self.last_activity[node.index()] = self.last_activity[node.index()].max(finished_at);
    }

    /// Record a retraction delta applied on `node`: the signature verified,
    /// the facts were deleted, and derived state was DRed-maintained.
    pub fn record_retraction(&mut self, node: NodeId, finished_at: VirtualTime) {
        self.retractions_applied[node.index()] += 1;
        self.last_activity[node.index()] = self.last_activity[node.index()].max(finished_at);
    }

    /// Average transaction duration across all nodes (Figure 7).
    pub fn average_transaction_duration(&self) -> Duration {
        let all: Vec<Duration> = self
            .transaction_durations
            .iter()
            .flatten()
            .copied()
            .collect();
        if all.is_empty() {
            return Duration::ZERO;
        }
        all.iter().sum::<Duration>() / all.len() as u32
    }

    /// The `q`-th percentile (0.0..=1.0) of committed-transaction durations
    /// across all nodes, by the nearest-rank method.  `Duration::ZERO` when
    /// nothing committed.  Backs the p50/p99 apply-latency figures of the
    /// streaming-throughput benchmark.
    pub fn transaction_duration_percentile(&self, q: f64) -> Duration {
        let mut all: Vec<Duration> = self
            .transaction_durations
            .iter()
            .flatten()
            .copied()
            .collect();
        if all.is_empty() {
            return Duration::ZERO;
        }
        all.sort_unstable();
        let rank = ((q.clamp(0.0, 1.0) * all.len() as f64).ceil() as usize).max(1) - 1;
        all[rank.min(all.len() - 1)]
    }

    /// Number of committed transactions across all nodes.
    pub fn total_transactions(&self) -> usize {
        self.transaction_durations.iter().map(|v| v.len()).sum()
    }

    /// Number of rejected batches across all nodes.
    pub fn total_rejections(&self) -> usize {
        self.rejected_batches.iter().sum()
    }

    /// Number of functional-dependency-conflicting batches across all nodes.
    pub fn total_conflicts(&self) -> usize {
        self.conflicting_batches.iter().sum()
    }

    /// Number of retraction deltas applied across all nodes.
    pub fn total_retractions(&self) -> usize {
        self.retractions_applied.iter().sum()
    }

    /// The virtual time at which the distributed fixpoint was reached
    /// (Figures 4 and 5): the last activity of any node.
    pub fn fixpoint_time(&self) -> VirtualTime {
        self.last_activity.iter().copied().max().unwrap_or(0)
    }

    /// Per-node convergence times: the virtual time each node last processed
    /// or received a batch (Figures 8 and 9).
    pub fn convergence_times(&self) -> &[VirtualTime] {
        &self.last_activity
    }

    /// The cumulative fraction of nodes converged by each point of `samples`
    /// evenly spaced virtual-time steps — the series plotted in Figures 8/9.
    pub fn convergence_cdf(&self, samples: usize) -> Vec<(VirtualTime, f64)> {
        let end = self.fixpoint_time().max(1);
        let n = self.last_activity.len().max(1);
        (0..=samples)
            .map(|i| {
                let t = end * i as u64 / samples.max(1) as u64;
                let converged = self.last_activity.iter().filter(|&&a| a <= t).count();
                (t, converged as f64 / n as f64)
            })
            .collect()
    }

    /// Completion times of transactions at one node (Figures 10 and 11 use
    /// the join initiator's completions).
    pub fn completions(&self, node: NodeId) -> &[VirtualTime] {
        &self.completion_times[node.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traffic_accounting() {
        let mut stats = NetworkStats::new(2);
        stats.record_send(NodeId(0), NodeId(1), 1024, MessageKind::Update);
        stats.record_send(NodeId(1), NodeId(0), 2048, MessageKind::Update);
        assert_eq!(stats.node(NodeId(0)).bytes_sent, 1024);
        assert_eq!(stats.node(NodeId(0)).bytes_received, 2048);
        assert_eq!(stats.total_bytes(), 3072);
        assert!((stats.average_per_node_kb() - 1.5).abs() < 1e-9);
        assert_eq!(stats.bytes_for_kind(MessageKind::Update), 3072);
        assert_eq!(stats.bytes_for_kind(MessageKind::AnonForward), 0);
    }

    #[test]
    fn per_link_counters_and_busiest_links() {
        let mut stats = NetworkStats::new(3);
        stats.record_send(NodeId(0), NodeId(1), 100, MessageKind::Update);
        stats.record_send(NodeId(0), NodeId(1), 200, MessageKind::Update);
        stats.record_send(NodeId(1), NodeId(2), 50, MessageKind::Update);
        assert_eq!(
            stats.link(NodeId(0), NodeId(1)),
            LinkTraffic {
                messages: 2,
                bytes: 300
            }
        );
        // Directed: the reverse link is untouched.
        assert_eq!(stats.link(NodeId(1), NodeId(0)), LinkTraffic::default());
        let busiest = stats.busiest_links(1);
        assert_eq!(busiest.len(), 1);
        assert_eq!((busiest[0].0, busiest[0].1), (NodeId(0), NodeId(1)));
        assert_eq!(busiest[0].2.messages, 2);
        // Asking for more links than exist returns them all, busiest first.
        let all = stats.busiest_links(10);
        assert_eq!(all.len(), 2);
        assert!(all[0].2.messages >= all[1].2.messages);
    }

    #[test]
    fn transaction_duration_percentiles() {
        let mut timing = TimingStats::new(2);
        for ms in 1..=100u64 {
            timing.record_transaction(NodeId((ms % 2) as u32), Duration::from_millis(ms), ms);
        }
        assert_eq!(
            timing.transaction_duration_percentile(0.5),
            Duration::from_millis(50)
        );
        assert_eq!(
            timing.transaction_duration_percentile(0.99),
            Duration::from_millis(99)
        );
        assert_eq!(
            timing.transaction_duration_percentile(1.0),
            Duration::from_millis(100)
        );
        assert_eq!(
            TimingStats::new(1).transaction_duration_percentile(0.5),
            Duration::ZERO
        );
    }

    #[test]
    fn total_bytes_counts_sent_only_by_design() {
        // The documented asymmetry: `total_bytes` is the *originated*
        // bandwidth.  Received bytes are some other node's sends — counting
        // them here would double-count every message when the per-node
        // values are summed (the deployment-level figure of the paper's §8).
        let mut stats = NetworkStats::new(2);
        stats.record_send(NodeId(0), NodeId(1), 1000, MessageKind::Update);
        stats.record_send(NodeId(1), NodeId(0), 500, MessageKind::Update);
        let node0 = stats.node(NodeId(0));
        assert_eq!(node0.bytes_sent, 1000);
        assert_eq!(node0.bytes_received, 500);
        assert_eq!(node0.total_bytes(), node0.bytes_sent);
        assert_ne!(node0.total_bytes(), node0.bytes_sent + node0.bytes_received);
        // Summing per-node totals equals each message counted exactly once.
        let summed: usize = stats.nodes().iter().map(NodeTraffic::total_bytes).sum();
        assert_eq!(summed, stats.total_bytes());
        assert_eq!(summed, 1500);
    }

    #[test]
    fn publish_exposes_both_directions_as_gauges() {
        let mut stats = NetworkStats::new(2);
        stats.record_send(NodeId(0), NodeId(1), 1000, MessageKind::Update);
        stats.publish_to_registry();
        let registry = secureblox_telemetry::registry();
        assert_eq!(
            registry.gauge("net_node_bytes_sent{node=\"0\"}").get(),
            1000
        );
        // The receive direction `total_bytes` excludes is observable here.
        assert_eq!(
            registry.gauge("net_node_bytes_received{node=\"1\"}").get(),
            1000
        );
        assert_eq!(
            registry.gauge("net_bytes_by_kind{kind=\"update\"}").get(),
            1000
        );
        let text = registry.prometheus_text();
        assert!(text.contains("net_node_bytes_received{node=\"1\"} 1000"));
    }

    #[test]
    fn timing_summaries() {
        let mut timing = TimingStats::new(3);
        timing.record_transaction(NodeId(0), Duration::from_millis(10), 1_000);
        timing.record_transaction(NodeId(1), Duration::from_millis(30), 5_000);
        timing.record_transaction(NodeId(1), Duration::from_millis(20), 9_000);
        timing.record_rejection(NodeId(2), 2_000);
        timing.record_conflict(NodeId(0), 500);
        timing.record_retraction(NodeId(1), 9_500);
        assert_eq!(timing.total_transactions(), 3);
        assert_eq!(timing.total_rejections(), 1);
        assert_eq!(timing.total_conflicts(), 1);
        assert_eq!(timing.total_retractions(), 1);
        assert_eq!(
            timing.average_transaction_duration(),
            Duration::from_millis(20)
        );
        assert_eq!(timing.fixpoint_time(), 9_500);
        assert_eq!(timing.convergence_times(), &[1_000, 9_500, 2_000]);
    }

    #[test]
    fn convergence_cdf_is_monotone_and_ends_at_one() {
        let mut timing = TimingStats::new(4);
        for (i, t) in [1_000u64, 2_000, 3_000, 10_000].iter().enumerate() {
            timing.record_transaction(NodeId(i as u32), Duration::from_millis(1), *t);
        }
        let cdf = timing.convergence_cdf(10);
        assert_eq!(cdf.first().unwrap().1, 0.0);
        assert_eq!(cdf.last().unwrap().1, 1.0);
        for window in cdf.windows(2) {
            assert!(window[1].1 >= window[0].1);
        }
    }

    #[test]
    fn empty_stats_are_safe() {
        let timing = TimingStats::new(0);
        assert_eq!(timing.average_transaction_duration(), Duration::ZERO);
        assert_eq!(timing.fixpoint_time(), 0);
        let stats = NetworkStats::new(0);
        assert_eq!(stats.average_per_node_kb(), 0.0);
    }
}
