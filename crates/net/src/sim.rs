//! Discrete-event message delivery with a virtual clock.

use crate::message::Message;
use crate::stats::NetworkStats;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::sync::Mutex;
use std::time::Duration;

/// Virtual time in nanoseconds since the start of the experiment.
pub type VirtualTime = u64;

/// Converts message sizes into delivery delays.
///
/// Delay = `propagation` + `wire_size / bandwidth`.  The defaults approximate
/// the paper's Gigabit-Ethernet cluster: ~100 µs propagation (switch + kernel
/// + UDP stack) and 1 Gbit/s of per-link bandwidth.
#[derive(Debug, Clone)]
pub struct LatencyModel {
    pub propagation: Duration,
    pub bandwidth_bytes_per_sec: u64,
}

impl Default for LatencyModel {
    fn default() -> Self {
        LatencyModel {
            propagation: Duration::from_micros(100),
            bandwidth_bytes_per_sec: 125_000_000, // 1 Gbit/s
        }
    }
}

impl LatencyModel {
    /// The delivery delay for a message of `wire_size` bytes.
    pub fn delay(&self, wire_size: usize) -> Duration {
        let transmission_ns =
            (wire_size as u128 * 1_000_000_000u128) / self.bandwidth_bytes_per_sec.max(1) as u128;
        self.propagation + Duration::from_nanos(transmission_ns as u64)
    }
}

/// An in-flight message scheduled for delivery at a virtual time.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Scheduled {
    deliver_at: VirtualTime,
    sequence: u64,
    message: Message,
}

impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.deliver_at, self.sequence).cmp(&(other.deliver_at, other.sequence))
    }
}

impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// The simulated network: a latency model, a delivery queue ordered by
/// virtual time, and per-node traffic statistics.
#[derive(Debug)]
pub struct SimNetwork {
    latency: LatencyModel,
    queue: BinaryHeap<Reverse<Scheduled>>,
    sequence: u64,
    stats: NetworkStats,
    /// Per-link delivery-time floors for [`SimNetwork::send_fifo`]: a stream
    /// message never arrives before its predecessor on the same (from, to)
    /// link, modelling a TCP-like ordered channel.
    link_floor: HashMap<(usize, usize), VirtualTime>,
}

/// The per-kind modelled-latency histogram (virtual nanoseconds from send to
/// delivery).  One static handle per kind keeps the send path free of name
/// formatting and registry lookups.
fn latency_histogram(
    kind: crate::message::MessageKind,
) -> &'static secureblox_telemetry::Histogram {
    use crate::message::MessageKind;
    match kind {
        MessageKind::Update => {
            secureblox_telemetry::histogram!("net_message_latency_ns{kind=\"update\"}")
        }
        MessageKind::AnonForward => {
            secureblox_telemetry::histogram!("net_message_latency_ns{kind=\"anon_forward\"}")
        }
        MessageKind::AnonBackward => {
            secureblox_telemetry::histogram!("net_message_latency_ns{kind=\"anon_backward\"}")
        }
        MessageKind::Bootstrap => {
            secureblox_telemetry::histogram!("net_message_latency_ns{kind=\"bootstrap\"}")
        }
        MessageKind::Credit => {
            secureblox_telemetry::histogram!("net_message_latency_ns{kind=\"credit\"}")
        }
    }
}

/// Record one message's modelled send-to-delivery latency (virtual
/// nanoseconds) into the per-kind telemetry histogram.  [`SimNetwork`] does
/// this itself on every send; the reactor executor computes delivery times in
/// its own per-node sinks and calls this directly.
pub fn record_message_latency(kind: crate::message::MessageKind, latency_ns: VirtualTime) {
    latency_histogram(kind).record(latency_ns);
}

/// Concurrent per-link FIFO mailboxes for the reactor executor.
///
/// Where [`SimNetwork`] holds one global delivery queue ordered by virtual
/// time, `LinkLanes` holds an N×N grid of independently locked queues — one
/// per directed link — so sender tasks can enqueue and receiver tasks can
/// drain concurrently while each link stays FIFO in *push* order.  Push order
/// is the sender's causal send order, which is exactly the guarantee
/// [`SimNetwork::send_fifo`] provides in the reference executor; the global
/// cross-link virtual-time interleaving is deliberately *not* reproduced
/// (outcome equivalence, not schedule equivalence — see DESIGN.md §13).
///
/// Each entry carries the virtual delivery time computed at send, so
/// receivers can still advance their per-node virtual clocks and the
/// `DeploymentReport` latency figures keep their meaning.
#[derive(Debug)]
pub struct LinkLanes {
    nodes: usize,
    lanes: Vec<Mutex<VecDeque<(VirtualTime, Message)>>>,
}

impl LinkLanes {
    /// Empty lanes for an `nodes` × `nodes` deployment.
    pub fn new(nodes: usize) -> Self {
        LinkLanes {
            nodes,
            lanes: (0..nodes * nodes)
                .map(|_| Mutex::new(VecDeque::new()))
                .collect(),
        }
    }

    fn lane(&self, from: usize, to: usize) -> &Mutex<VecDeque<(VirtualTime, Message)>> {
        &self.lanes[from * self.nodes + to]
    }

    /// Append a message to its (from, to) lane.  Lanes are FIFO, so a lane's
    /// drain order is always the sender's push order.
    pub fn push(&self, deliver_at: VirtualTime, message: Message) {
        self.lane(message.from.index(), message.to.index())
            .lock()
            .expect("link lane poisoned")
            .push_back((deliver_at, message));
    }

    /// Move every queued message addressed to node `to` into `sink`,
    /// scanning sender lanes in index order.  Per-link order is preserved;
    /// the interleaving *between* different senders is arbitrary.
    pub fn drain_to(&self, to: usize, sink: &mut Vec<(VirtualTime, Message)>) {
        for from in 0..self.nodes {
            let mut lane = self.lane(from, to).lock().expect("link lane poisoned");
            while let Some(entry) = lane.pop_front() {
                sink.push(entry);
            }
        }
    }

    /// True when every lane is empty.  Only meaningful at quiescence (no
    /// concurrent pushes); the reactor's epoch counter, not this scan, is the
    /// authoritative idle test.
    pub fn is_empty(&self) -> bool {
        self.lanes
            .iter()
            .all(|lane| lane.lock().expect("link lane poisoned").is_empty())
    }
}

impl SimNetwork {
    /// Create a network with the given latency model for `nodes` nodes.
    pub fn new(nodes: usize, latency: LatencyModel) -> Self {
        SimNetwork {
            latency,
            queue: BinaryHeap::new(),
            sequence: 0,
            stats: NetworkStats::new(nodes),
            link_floor: HashMap::new(),
        }
    }

    /// Send a message at virtual time `now`; it will be delivered after the
    /// modelled latency.  Traffic is recorded against both endpoints.
    pub fn send(&mut self, message: Message, now: VirtualTime) -> VirtualTime {
        self.send_ordered(message, now, 0)
    }

    /// Send a message whose delivery must not precede `floor` — the FIFO
    /// guarantee of a stream-shaped channel.  The update-stream runtime keeps
    /// a per-link floor at the previous message's delivery time so an ordered
    /// delta stream can never be reordered by a smaller message overtaking a
    /// larger one (deliveries at equal times stay FIFO by send sequence).
    /// Returns the scheduled delivery time, which is the caller's next floor.
    pub fn send_ordered(
        &mut self,
        message: Message,
        now: VirtualTime,
        floor: VirtualTime,
    ) -> VirtualTime {
        let wire_size = message.wire_size();
        let deliver_at = (now + self.latency.delay(wire_size).as_nanos() as u64).max(floor);
        self.stats
            .record_send(message.from, message.to, wire_size, message.kind);
        // Modelled send-to-delivery latency (virtual ns), including any FIFO
        // floor wait, bucketed by message kind.
        latency_histogram(message.kind).record(deliver_at - now);
        self.sequence += 1;
        self.queue.push(Reverse(Scheduled {
            deliver_at,
            sequence: self.sequence,
            message,
        }));
        secureblox_telemetry::gauge!("net_in_flight").set(self.queue.len() as i64);
        deliver_at
    }

    /// Send a message on its link's FIFO stream: delivery never precedes the
    /// previous `send_fifo` message on the same (from, to) link.  The network
    /// keeps the per-link floors internally, so every caller shares one
    /// stream order per link.  Returns the scheduled delivery time.
    pub fn send_fifo(&mut self, message: Message, now: VirtualTime) -> VirtualTime {
        let link = (message.from.index(), message.to.index());
        let floor = self.link_floor.get(&link).copied().unwrap_or(0);
        let delivered = self.send_ordered(message, now, floor);
        self.link_floor.insert(link, delivered);
        delivered
    }

    /// Schedule a message for delivery at an exact virtual time without
    /// recording traffic (used for bootstrap fact distribution).
    pub fn schedule_untracked(&mut self, message: Message, deliver_at: VirtualTime) {
        self.sequence += 1;
        self.queue.push(Reverse(Scheduled {
            deliver_at,
            sequence: self.sequence,
            message,
        }));
    }

    /// Pop the next message in virtual-time order.
    pub fn next_delivery(&mut self) -> Option<(VirtualTime, Message)> {
        let delivery = self.queue.pop().map(|Reverse(s)| (s.deliver_at, s.message));
        if delivery.is_some() {
            secureblox_telemetry::gauge!("net_in_flight").set(self.queue.len() as i64);
        }
        delivery
    }

    /// Number of in-flight messages.
    pub fn in_flight(&self) -> usize {
        self.queue.len()
    }

    /// True if no messages are in flight — together with idle nodes this is
    /// the distributed-fixpoint condition.
    pub fn is_idle(&self) -> bool {
        self.queue.is_empty()
    }

    /// Traffic statistics collected so far.
    pub fn stats(&self) -> &NetworkStats {
        &self.stats
    }

    /// Fold a per-task statistics shard (recorded outside this network by a
    /// reactor sender) into this network's counters, so `stats()` reports the
    /// whole deployment regardless of executor mode.
    pub fn absorb_stats(&mut self, shard: &NetworkStats) {
        self.stats.merge(shard);
    }

    /// The latency model in force.
    pub fn latency_model(&self) -> &LatencyModel {
        &self.latency
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::MessageKind;
    use crate::node::NodeId;

    #[test]
    fn latency_grows_with_size() {
        let model = LatencyModel::default();
        assert!(model.delay(100_000) > model.delay(100));
        assert!(model.delay(0) >= model.propagation);
    }

    #[test]
    fn deliveries_come_out_in_time_order() {
        let mut network = SimNetwork::new(3, LatencyModel::default());
        let a = Message::new(
            NodeId(0),
            NodeId(1),
            MessageKind::Update,
            vec![0u8; 10_000_000],
        );
        let b = Message::new(NodeId(1), NodeId(2), MessageKind::Update, vec![0u8; 10]);
        network.send(a.clone(), 0);
        network.send(b.clone(), 0);
        // The small message overtakes the large one despite being sent second.
        let (t1, first) = network.next_delivery().unwrap();
        let (t2, second) = network.next_delivery().unwrap();
        assert_eq!(first, b);
        assert_eq!(second, a);
        assert!(t1 <= t2);
        assert!(network.is_idle());
    }

    #[test]
    fn fifo_for_equal_times() {
        let mut network = SimNetwork::new(2, LatencyModel::default());
        for i in 0..5u8 {
            network.send(
                Message::new(NodeId(0), NodeId(1), MessageKind::Update, vec![i]),
                0,
            );
        }
        let mut order = Vec::new();
        while let Some((_, msg)) = network.next_delivery() {
            order.push(msg.payload[0]);
        }
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn ordered_send_respects_the_floor() {
        let mut network = SimNetwork::new(2, LatencyModel::default());
        // A huge message followed by a tiny one on the same link: with plain
        // send the tiny one would overtake; the floor keeps the stream FIFO.
        let big = Message::new(
            NodeId(0),
            NodeId(1),
            MessageKind::Update,
            vec![0u8; 10_000_000],
        );
        let small = Message::new(NodeId(0), NodeId(1), MessageKind::Update, vec![1u8]);
        let first_at = network.send_ordered(big.clone(), 0, 0);
        let second_at = network.send_ordered(small.clone(), 0, first_at);
        assert!(second_at >= first_at);
        let (_, first) = network.next_delivery().unwrap();
        let (_, second) = network.next_delivery().unwrap();
        assert_eq!(first, big, "stream order preserved");
        assert_eq!(second, small);
    }

    #[test]
    fn send_fifo_keeps_per_link_order_across_calls() {
        let mut network = SimNetwork::new(3, LatencyModel::default());
        let big = Message::new(
            NodeId(0),
            NodeId(1),
            MessageKind::Update,
            vec![0u8; 10_000_000],
        );
        let small = Message::new(NodeId(0), NodeId(1), MessageKind::Update, vec![1u8]);
        // A message on a *different* link is unaffected by 0→1's floor.
        let other_link = Message::new(NodeId(0), NodeId(2), MessageKind::Update, vec![2u8]);
        let first_at = network.send_fifo(big.clone(), 0);
        let second_at = network.send_fifo(small.clone(), 0);
        let other_at = network.send_fifo(other_link.clone(), 0);
        assert!(second_at >= first_at, "same-link FIFO preserved");
        assert!(other_at < first_at, "other links are independent streams");
        let (_, first) = network.next_delivery().unwrap();
        assert_eq!(first, other_link);
        let (_, second) = network.next_delivery().unwrap();
        assert_eq!(second, big);
    }

    #[test]
    fn stats_track_bytes() {
        let mut network = SimNetwork::new(2, LatencyModel::default());
        network.send(
            Message::new(NodeId(0), NodeId(1), MessageKind::Update, vec![0u8; 52]),
            0,
        );
        let stats = network.stats();
        assert_eq!(stats.node(NodeId(0)).bytes_sent, 100);
        assert_eq!(stats.node(NodeId(1)).bytes_received, 100);
        assert_eq!(stats.node(NodeId(0)).messages_sent, 1);
    }

    #[test]
    fn link_lanes_preserve_per_link_fifo_and_drain_concurrently() {
        let lanes = LinkLanes::new(3);
        for i in 0..4u8 {
            lanes.push(
                u64::from(i),
                Message::new(NodeId(0), NodeId(2), MessageKind::Update, vec![i]),
            );
        }
        lanes.push(
            7,
            Message::new(NodeId(1), NodeId(2), MessageKind::Credit, vec![9]),
        );
        // A message for a different receiver stays in its own lane.
        lanes.push(
            8,
            Message::new(NodeId(0), NodeId(1), MessageKind::Update, vec![8]),
        );
        let mut inbox = Vec::new();
        lanes.drain_to(2, &mut inbox);
        let from0: Vec<u8> = inbox
            .iter()
            .filter(|(_, m)| m.from == NodeId(0))
            .map(|(_, m)| m.payload[0])
            .collect();
        assert_eq!(from0, vec![0, 1, 2, 3], "per-link FIFO is push order");
        assert_eq!(inbox.len(), 5);
        assert!(!lanes.is_empty(), "node 1's inbox is still queued");
        let mut other = Vec::new();
        lanes.drain_to(1, &mut other);
        assert_eq!(other.len(), 1);
        assert!(lanes.is_empty());
    }

    #[test]
    fn absorbed_shards_match_a_shared_recorder() {
        // Record the same sends once through a shared recorder, once through
        // two per-task shards merged afterwards: identical statistics.
        let mut shared = NetworkStats::new(2);
        shared.record_send(NodeId(0), NodeId(1), 100, MessageKind::Update);
        shared.record_send(NodeId(1), NodeId(0), 40, MessageKind::Credit);

        let mut network = SimNetwork::new(2, LatencyModel::default());
        let mut shard_a = NetworkStats::new(2);
        shard_a.record_send(NodeId(0), NodeId(1), 100, MessageKind::Update);
        let mut shard_b = NetworkStats::new(2);
        shard_b.record_send(NodeId(1), NodeId(0), 40, MessageKind::Credit);
        network.absorb_stats(&shard_a);
        network.absorb_stats(&shard_b);

        let merged = network.stats();
        assert_eq!(merged.node(NodeId(0)), shared.node(NodeId(0)));
        assert_eq!(merged.node(NodeId(1)), shared.node(NodeId(1)));
        assert_eq!(
            merged.messages_for_kind(MessageKind::Credit),
            shared.messages_for_kind(MessageKind::Credit)
        );
        assert_eq!(
            merged.link(NodeId(0), NodeId(1)),
            shared.link(NodeId(0), NodeId(1))
        );
    }

    #[test]
    fn untracked_schedule_skips_stats() {
        let mut network = SimNetwork::new(2, LatencyModel::default());
        network.schedule_untracked(
            Message::new(NodeId(0), NodeId(1), MessageKind::Bootstrap, vec![0u8; 100]),
            5,
        );
        assert_eq!(network.stats().total_bytes(), 0);
        let (t, _) = network.next_delivery().unwrap();
        assert_eq!(t, 5);
    }
}
