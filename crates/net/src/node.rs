//! Node identities.
//!
//! The paper's built-in `node` type is an IP address and UDP port (§5.1).
//! The simulation keeps that shape — every node has a synthetic address — but
//! identifies nodes by a dense index so the event queue and statistics can
//! use plain vectors.

use std::fmt;

/// A dense node identifier within one simulated deployment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The index as a usize (for vector indexing).
    pub fn index(&self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node{}", self.0)
    }
}

/// Descriptive information about a simulated node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeInfo {
    pub id: NodeId,
    /// The principal hosted at this node (the paper separates principals from
    /// nodes via `principal_node`; the simulation keeps a 1:1 mapping).
    pub principal: String,
    /// Synthetic IP:port address, for display and for the `node` type values.
    pub address: String,
}

impl NodeInfo {
    /// Create the `i`-th node of a deployment hosting `principal`.
    pub fn new(index: u32, principal: impl Into<String>) -> Self {
        NodeInfo {
            id: NodeId(index),
            principal: principal.into(),
            address: format!("10.0.{}.{}:7000", index / 256, index % 256),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_info_addresses_are_distinct() {
        let a = NodeInfo::new(0, "n0");
        let b = NodeInfo::new(300, "n300");
        assert_ne!(a.address, b.address);
        assert_eq!(a.id.index(), 0);
        assert_eq!(b.id, NodeId(300));
        assert_eq!(a.principal, "n0");
    }

    #[test]
    fn display_forms() {
        assert_eq!(NodeId(3).to_string(), "node3");
    }
}
