//! Property-based tests for the BloxGenerics compiler.
//!
//! The security of every generated policy depends on the compiler doing the
//! same thing for *every* predicate shape, so these properties sweep random
//! predicate names and arities through the `says` policy of the paper's §3.2
//! and check the structural guarantees: one mapping per exportable predicate,
//! the arity convention of the "said" counterpart, determinism, and the
//! generic-constraint scope check.

use proptest::prelude::*;
use secureblox_datalog::{parse_program, Workspace};
use secureblox_generics::GenericsCompiler;
use std::collections::BTreeSet;

/// The core `says` policy, verbatim from the paper (§3.2 / §4.1), restricted
/// to exportable predicates so the scope constraint holds.
const SAYS_POLICY: &str = r#"
    says[T] = ST, predicate(ST),
    '{
      ST(P1, P2, V*) -> principal(P1), principal(P2), types[T](V*).
    }
    <-- predicate(T), exportable(T).

    says(P, SP) --> exportable(P).

    '{ T(V*) <- says[T](P, self[], V*). }
    <-- predicate(T), exportable(T).
"#;

fn pred_names() -> impl Strategy<Value = BTreeSet<String>> {
    proptest::collection::btree_set("p_[a-z][a-z0-9_]{2,8}", 1..6)
}

/// Build an application program that declares each predicate with the given
/// arity and marks a subset exportable.
fn app_source(preds: &[(String, usize)], exportable: &[bool]) -> String {
    let mut src = String::new();
    for (name, arity) in preds {
        let vars: Vec<String> = (0..*arity).map(|i| format!("X{i}")).collect();
        let types: Vec<String> = (0..*arity).map(|i| format!("node(X{i})")).collect();
        src.push_str(&format!(
            "{name}({}) -> {}.\n",
            vars.join(", "),
            types.join(", ")
        ));
    }
    for ((name, _), &exp) in preds.iter().zip(exportable) {
        if exp {
            src.push_str(&format!("exportable(`{name}).\n"));
        }
    }
    src
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Exactly the exportable predicates receive a `says$…` mapping, and the
    /// mapping follows the mangling convention.
    #[test]
    fn mappings_exist_exactly_for_exportable_predicates(
        names in pred_names(),
        arities in proptest::collection::vec(1usize..5, 6),
        export_mask in proptest::collection::vec(any::<bool>(), 6),
    ) {
        let preds: Vec<(String, usize)> =
            names.iter().cloned().zip(arities.iter().copied()).collect();
        let mask: Vec<bool> = export_mask.iter().copied().take(preds.len()).collect();
        let source = format!("{}\n{}", app_source(&preds, &mask), SAYS_POLICY);
        let program = parse_program(&source).unwrap();
        let compiled = GenericsCompiler::new().compile(&program).unwrap();
        for ((name, _), &exp) in preds.iter().zip(&mask) {
            let mapping = compiled.mapping("says", name);
            if exp {
                let expected = format!("says${name}");
                prop_assert_eq!(mapping, Some(expected.as_str()));
            } else {
                prop_assert_eq!(mapping, None);
            }
        }
    }

    /// The generated "said" counterpart has arity `n + 2` (two principals in
    /// front of the payload), for any payload arity `n`.
    #[test]
    fn said_counterpart_has_arity_plus_two(name in "p_[a-z][a-z0-9_]{2,8}", arity in 1usize..7) {
        let preds = vec![(name.clone(), arity)];
        let source = format!("{}\n{}", app_source(&preds, &[true]), SAYS_POLICY);
        let program = parse_program(&source).unwrap();
        let compiled = GenericsCompiler::new().compile(&program).unwrap();
        let said = compiled.mapping("says", &name).unwrap().to_string();

        let mut ws = Workspace::new();
        ws.install_program(&compiled.program).unwrap();
        let decl = ws.schema().get(&said).expect("said predicate is declared");
        prop_assert_eq!(decl.arity, arity + 2);
    }

    /// Compilation is deterministic: compiling the same program twice yields
    /// the same generated statements in the same order.
    #[test]
    fn compilation_is_deterministic(
        names in pred_names(),
        arities in proptest::collection::vec(1usize..4, 6),
    ) {
        let preds: Vec<(String, usize)> =
            names.iter().cloned().zip(arities.iter().copied()).collect();
        let mask = vec![true; preds.len()];
        let source = format!("{}\n{}", app_source(&preds, &mask), SAYS_POLICY);
        let program = parse_program(&source).unwrap();
        let a = GenericsCompiler::new().compile(&program).unwrap();
        let b = GenericsCompiler::new().compile(&program).unwrap();
        prop_assert_eq!(a.program.to_string(), b.program.to_string());
        prop_assert_eq!(a.generated_count(), b.generated_count());
    }

    /// The number of generated statements grows monotonically with the number
    /// of exportable predicates (each exportable predicate contributes at
    /// least its constraint and import rule).
    #[test]
    fn generated_statements_grow_with_exportable_set(
        names in pred_names(),
        arity in 1usize..4,
    ) {
        let preds: Vec<(String, usize)> =
            names.iter().cloned().map(|n| (n, arity)).collect();
        let mut previous = 0usize;
        for k in 0..=preds.len() {
            let mask: Vec<bool> = (0..preds.len()).map(|i| i < k).collect();
            let source = format!("{}\n{}", app_source(&preds, &mask), SAYS_POLICY);
            let program = parse_program(&source).unwrap();
            let compiled = GenericsCompiler::new().compile(&program).unwrap();
            if k > 0 {
                prop_assert!(compiled.generated_count() > 0);
            }
            prop_assert!(compiled.generated_count() >= previous);
            previous = compiled.generated_count();
        }
    }

    /// The scope check rejects any program that tries to "say" a
    /// non-exportable predicate through a parameterized reference, while the
    /// exportable sibling predicate compiles fine.
    #[test]
    fn scope_check_rejects_saying_private_predicates(private in "p_[a-z][a-z0-9_]{2,8}",
                                                     arity in 1usize..4) {
        let public = format!("{private}_pub");
        let preds = vec![(public.clone(), arity), (private.clone(), arity)];
        // Only the first predicate is exportable; the second stays private.
        let base = format!("{}\n{}", app_source(&preds, &[true, false]), SAYS_POLICY);
        let vars: Vec<String> = (0..arity).map(|i| format!("Y{i}")).collect();

        // Saying the exportable predicate is accepted …
        let ok_source = format!(
            "{base}\n{public}({vars}) <- says[`{public}](P, self[], {vars}).\n",
            vars = vars.join(", ")
        );
        let ok_program = parse_program(&ok_source).unwrap();
        prop_assert!(GenericsCompiler::new().compile(&ok_program).is_ok());

        // … while saying the private predicate is rejected at compile time.
        let bad_source = format!(
            "{base}\n{private}({vars}) <- says[`{private}](P, self[], {vars}).\n",
            vars = vars.join(", ")
        );
        let bad_program = parse_program(&bad_source).unwrap();
        prop_assert!(GenericsCompiler::new().compile(&bad_program).is_err());
    }
}
