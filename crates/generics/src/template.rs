//! Instantiation of code templates.
//!
//! A quoted template is a list of DatalogLB statements whose predicate
//! positions and argument sequences may refer to meta-level variables.  Given
//! one satisfying binding of the enclosing generic rule's body, instantiation
//! substitutes:
//!
//! * predicate variables (`ST`) with the concrete predicate minted for them,
//! * parameterized references over meta variables (`says[T]`) with the
//!   mangled concrete name (`says$path`),
//! * the special `types[T](V*)` form with one unary type atom per declared
//!   argument type of the parameter predicate,
//! * variable sequences (`V*`) with `arity(T)` fresh object-level variables,
//! * meta variables bound to ground values with the corresponding constants,
//!
//! while leaving ordinary object-level variables (`P1`, `X`, …) untouched.

use crate::mangle;
use secureblox_datalog::ast::{
    Atom, Constraint, FactDecl, Literal, PredRef, Rule, Statement, Template, Term,
};
use secureblox_datalog::error::{DatalogError, Result};
use secureblox_datalog::eval::Bindings;
use secureblox_datalog::schema::Schema;
use secureblox_datalog::value::Value;
use std::collections::HashMap;

/// Everything needed to instantiate one template for one binding.
pub struct InstantiationContext<'a> {
    /// Meta-level bindings from the generic rule's body (e.g. `T → `path`).
    pub bindings: &'a Bindings,
    /// Names minted for head-existential predicate variables (e.g.
    /// `ST → says$path`).
    pub pred_var_names: &'a HashMap<String, String>,
    /// Expansion length for `V*` sequences (the parameter predicate's arity).
    pub seq_arity: Option<usize>,
    /// Schema of the input program, for `types[T]` expansion.
    pub schema: &'a Schema,
}

impl<'a> InstantiationContext<'a> {
    fn generics_err(&self, message: impl Into<String>) -> DatalogError {
        DatalogError::Generics(message.into())
    }

    /// Resolve a predicate variable to a concrete name: first the minted
    /// head-existential names, then meta bindings to quoted predicates.
    fn resolve_pred_var(&self, var: &str) -> Result<String> {
        if let Some(name) = self.pred_var_names.get(var) {
            return Ok(name.clone());
        }
        match self.bindings.get(var) {
            Some(Value::Pred(p)) => Ok(p.to_string()),
            Some(other) => Err(self.generics_err(format!(
                "predicate variable {var} is bound to the non-predicate value {other}"
            ))),
            None => Err(self.generics_err(format!(
                "predicate variable {var} is not bound by the generic rule body"
            ))),
        }
    }

    fn resolve_pred_ref(&self, pred: &PredRef) -> Result<PredRef> {
        match pred {
            PredRef::Named(n) => Ok(PredRef::Named(n.clone())),
            PredRef::Parameterized { generic, param } => Ok(PredRef::Named(mangle(generic, param))),
            PredRef::ParameterizedVar { generic, var } => {
                let param = self.resolve_pred_var(var)?;
                Ok(PredRef::Named(mangle(generic, &param)))
            }
            PredRef::Var(v) => Ok(PredRef::Named(self.resolve_pred_var(v)?)),
        }
    }

    fn instantiate_term(&self, term: &Term, out: &mut Vec<Term>) -> Result<()> {
        match term {
            Term::VarSeq(base) => {
                let arity = self.seq_arity.ok_or_else(|| {
                    self.generics_err(format!(
                        "cannot expand {base}*: no parameter predicate with a known arity is in \
                         scope"
                    ))
                })?;
                for i in 0..arity {
                    out.push(Term::Var(format!("{base}${i}")));
                }
                Ok(())
            }
            Term::Var(v) => {
                // A meta variable bound by the generic rule body becomes a
                // constant; an object-level variable stays a variable.
                match self.bindings.get(v) {
                    Some(value) => out.push(Term::Const(value.clone())),
                    None => out.push(Term::Var(v.clone())),
                }
                Ok(())
            }
            Term::BinOp(lhs, op, rhs) => {
                let mut left = Vec::with_capacity(1);
                let mut right = Vec::with_capacity(1);
                self.instantiate_term(lhs, &mut left)?;
                self.instantiate_term(rhs, &mut right)?;
                if left.len() != 1 || right.len() != 1 {
                    return Err(self.generics_err(
                        "variable sequences cannot appear inside arithmetic expressions"
                            .to_string(),
                    ));
                }
                out.push(Term::BinOp(
                    Box::new(left.pop().expect("checked length")),
                    *op,
                    Box::new(right.pop().expect("checked length")),
                ));
                Ok(())
            }
            other => {
                out.push(other.clone());
                Ok(())
            }
        }
    }

    /// Instantiate an atom.  The special `types[T](args…)` form expands to a
    /// list of unary type atoms (one per declared argument type of the
    /// parameter predicate); every other atom instantiates to exactly one.
    pub fn instantiate_atom(&self, atom: &Atom) -> Result<Vec<Atom>> {
        if let PredRef::ParameterizedVar { generic, var } = &atom.pred {
            if generic == "types" {
                return self.expand_types_form(var, atom);
            }
        }
        if let PredRef::Parameterized { generic, param } = &atom.pred {
            if generic == "types" {
                return self.expand_types_for(param, atom);
            }
        }
        let pred = self.resolve_pred_ref(&atom.pred)?;
        let mut terms = Vec::with_capacity(atom.terms.len());
        for term in &atom.terms {
            self.instantiate_term(term, &mut terms)?;
        }
        Ok(vec![Atom {
            pred,
            terms,
            functional: atom.functional,
        }])
    }

    fn expand_types_form(&self, var: &str, atom: &Atom) -> Result<Vec<Atom>> {
        let param = self.resolve_pred_var(var)?;
        self.expand_types_for(&param, atom)
    }

    /// Expand `types[param](args…)` to `t0(a0), t1(a1), …` using the declared
    /// argument types of `param`.  Positions without a declared type produce
    /// no constraint.
    fn expand_types_for(&self, param: &str, atom: &Atom) -> Result<Vec<Atom>> {
        let decl = self.schema.get(param).ok_or_else(|| {
            self.generics_err(format!(
                "types[{param}] cannot be expanded: predicate {param} is not declared"
            ))
        })?;
        let mut args = Vec::new();
        for term in &atom.terms {
            self.instantiate_term(term, &mut args)?;
        }
        if args.len() != decl.arity {
            return Err(self.generics_err(format!(
                "types[{param}] applied to {} arguments but {param} has arity {}",
                args.len(),
                decl.arity
            )));
        }
        let mut atoms = Vec::new();
        for (arg, ty) in args.into_iter().zip(decl.arg_types.iter()) {
            if let Some(ty) = ty {
                atoms.push(Atom {
                    pred: PredRef::Named(ty.clone()),
                    terms: vec![arg],
                    functional: false,
                });
            }
        }
        Ok(atoms)
    }

    fn instantiate_literal(&self, literal: &Literal, out: &mut Vec<Literal>) -> Result<()> {
        match literal {
            Literal::Pos(atom) => {
                for atom in self.instantiate_atom(atom)? {
                    out.push(Literal::Pos(atom));
                }
            }
            Literal::Neg(atom) => {
                let atoms = self.instantiate_atom(atom)?;
                if atoms.len() != 1 {
                    return Err(self.generics_err(
                        "the types[…] form cannot appear under negation".to_string(),
                    ));
                }
                out.push(Literal::Neg(
                    atoms.into_iter().next().expect("checked length"),
                ));
            }
            Literal::Cmp(lhs, op, rhs) => {
                let mut left = Vec::with_capacity(1);
                let mut right = Vec::with_capacity(1);
                self.instantiate_term(lhs, &mut left)?;
                self.instantiate_term(rhs, &mut right)?;
                if left.len() != 1 || right.len() != 1 {
                    return Err(self.generics_err(
                        "variable sequences cannot appear in comparisons".to_string(),
                    ));
                }
                out.push(Literal::Cmp(
                    left.pop().expect("checked length"),
                    *op,
                    right.pop().expect("checked length"),
                ));
            }
        }
        Ok(())
    }

    /// Instantiate one template statement into concrete statements.
    pub fn instantiate_statement(&self, statement: &Statement) -> Result<Vec<Statement>> {
        match statement {
            Statement::Rule(rule) => {
                let mut head = Vec::new();
                for atom in &rule.head {
                    head.extend(self.instantiate_atom(atom)?);
                }
                let mut body = Vec::new();
                for literal in &rule.body {
                    self.instantiate_literal(literal, &mut body)?;
                }
                Ok(vec![Statement::Rule(Rule {
                    head,
                    body,
                    agg: rule.agg.clone(),
                })])
            }
            Statement::Constraint(constraint) => {
                let mut lhs = Vec::new();
                for literal in &constraint.lhs {
                    self.instantiate_literal(literal, &mut lhs)?;
                }
                let mut rhs = Vec::new();
                for literal in &constraint.rhs {
                    self.instantiate_literal(literal, &mut rhs)?;
                }
                Ok(vec![Statement::Constraint(Constraint { lhs, rhs })])
            }
            Statement::Fact(fact) => {
                let atoms = self.instantiate_atom(&fact.atom)?;
                Ok(atoms
                    .into_iter()
                    .map(|atom| Statement::Fact(FactDecl { atom }))
                    .collect())
            }
            Statement::GenericRule(_) | Statement::GenericConstraint(_) => Err(self.generics_err(
                "nested generic statements inside code templates are not supported".to_string(),
            )),
        }
    }

    /// Instantiate a whole template.
    pub fn instantiate_template(&self, template: &Template) -> Result<Vec<Statement>> {
        let mut statements = Vec::new();
        for statement in &template.statements {
            statements.extend(self.instantiate_statement(statement)?);
        }
        Ok(statements)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use secureblox_datalog::parse_program;

    struct Fixture {
        schema: Schema,
        bindings: Bindings,
        pred_var_names: HashMap<String, String>,
    }

    impl Fixture {
        fn new() -> Self {
            let program = parse_program(
                "path[P, Src, Dst] = C -> pathvar(P), node(Src), node(Dst), int[32](C).\n\
                 reachable(X, Y) -> node(X), node(Y).",
            )
            .unwrap();
            let mut schema = Schema::new();
            schema.absorb_program(&program).unwrap();
            let mut bindings = Bindings::new();
            bindings.bind("T", Value::pred("path"));
            let mut pred_var_names = HashMap::new();
            pred_var_names.insert("ST".to_string(), "says$path".to_string());
            Fixture {
                schema,
                bindings,
                pred_var_names,
            }
        }

        fn ctx(&self) -> InstantiationContext<'_> {
            InstantiationContext {
                bindings: &self.bindings,
                pred_var_names: &self.pred_var_names,
                seq_arity: Some(4),
                schema: &self.schema,
            }
        }

        fn template(source: &str) -> Template {
            let wrapped = format!("'{{ {source} }} <-- predicate(T).");
            let program = parse_program(&wrapped).unwrap();
            let template = program.generic_rules().next().unwrap().templates[0].clone();
            template
        }
    }

    #[test]
    fn constraint_with_types_and_varseq() {
        let fixture = Fixture::new();
        let template =
            Fixture::template("ST(P1, P2, V*) -> principal(P1), principal(P2), types[T](V*).");
        let statements = fixture.ctx().instantiate_template(&template).unwrap();
        assert_eq!(statements.len(), 1);
        let text = match &statements[0] {
            Statement::Constraint(c) => c.to_string(),
            other => panic!("expected constraint, got {other:?}"),
        };
        assert_eq!(
            text,
            "says$path(P1, P2, V$0, V$1, V$2, V$3) -> principal(P1), principal(P2), \
             pathvar(V$0), node(V$1), node(V$2), int(V$3)."
        );
    }

    #[test]
    fn import_rule_instantiation() {
        let fixture = Fixture::new();
        let template = Fixture::template("T(V*) <- says[T](P, self[], V*), trustworthy(P).");
        let statements = fixture.ctx().instantiate_template(&template).unwrap();
        let text = match &statements[0] {
            Statement::Rule(r) => r.to_string(),
            other => panic!("expected rule, got {other:?}"),
        };
        assert_eq!(
            text,
            "path(V$0, V$1, V$2, V$3) <- says$path(P, self[], V$0, V$1, V$2, V$3), trustworthy(P)."
        );
    }

    #[test]
    fn meta_variable_becomes_constant() {
        let fixture = Fixture::new();
        // U is object-level (stays a variable); T is meta (becomes `path).
        let template = Fixture::template("audit(U, T) <- requests(U, T).");
        let statements = fixture.ctx().instantiate_template(&template).unwrap();
        let text = statements[0].clone();
        match text {
            Statement::Rule(r) => {
                assert_eq!(r.head[0].terms[0], Term::Var("U".into()));
                assert_eq!(r.head[0].terms[1], Term::Const(Value::pred("path")));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn missing_seq_arity_is_error() {
        let fixture = Fixture::new();
        let template = Fixture::template("T(V*) <- says[T](P, self[], V*).");
        let ctx = InstantiationContext {
            bindings: &fixture.bindings,
            pred_var_names: &fixture.pred_var_names,
            seq_arity: None,
            schema: &fixture.schema,
        };
        assert!(ctx.instantiate_template(&template).is_err());
    }

    #[test]
    fn unbound_predicate_variable_is_error() {
        let fixture = Fixture::new();
        let template = Fixture::template("UNKNOWN(V*) <- says[T](P, self[], V*).");
        assert!(fixture.ctx().instantiate_template(&template).is_err());
    }

    #[test]
    fn quoted_parameterization_resolves() {
        let fixture = Fixture::new();
        let template = Fixture::template("out(X) <- says[`reachable](P, self[], X, Y).");
        let statements = fixture.ctx().instantiate_template(&template).unwrap();
        match &statements[0] {
            Statement::Rule(r) => {
                let atom = r.body[0].as_pos().unwrap();
                assert_eq!(atom.pred, PredRef::Named("says$reachable".into()));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn types_arity_mismatch_is_error() {
        let fixture = Fixture::new();
        let template = Fixture::template("ST(P1, X) -> types[T](X).");
        assert!(fixture.ctx().instantiate_template(&template).is_err());
    }
}
