//! Relational representation of programs (the meta-database).
//!
//! "A BloxGenerics compiler pipeline stage converts input DatalogLB programs
//! into their relational representations and populates these generic
//! predicates" (paper §4.1.1).  The built-in generic predicates provided here
//! are:
//!
//! * `predicate(P)` — the set of concrete predicates,
//! * `pred_arity[P] = N` — each predicate's arity,
//! * `functional(P)` — predicates declared with functional (`p[..]=v`) syntax,
//! * `type_pred(P)` — predicates used as types.
//!
//! User-defined generic predicates (such as `exportable` or
//! `trustworthyPerPred`) are ordinary facts whose arguments are quoted
//! predicates; they are copied into the meta-database so that generic-rule
//! bodies can match them.

use secureblox_datalog::ast::{Literal, Program, Statement, Term};
use secureblox_datalog::error::Result;
use secureblox_datalog::relation::Relation;
use secureblox_datalog::schema::{PredicateKind, Schema};
use secureblox_datalog::value::{Tuple, Value};
use std::collections::HashMap;

/// The meta-level database over which generic rules and constraints are
/// evaluated.
#[derive(Debug, Clone, Default)]
pub struct MetaDatabase {
    relations: HashMap<String, Relation>,
}

impl MetaDatabase {
    /// Build the meta-database for a program and its absorbed schema.
    pub fn from_program(program: &Program, schema: &Schema) -> Result<Self> {
        let mut db = MetaDatabase {
            relations: HashMap::new(),
        };

        // Built-in generic predicates derived from the schema.
        for decl in schema.decls() {
            db.insert("predicate", vec![Value::pred(&decl.name)])?;
            db.insert(
                "pred_arity",
                vec![Value::pred(&decl.name), Value::Int(decl.arity as i64)],
            )?;
            if matches!(decl.kind, PredicateKind::Functional { .. }) {
                db.insert("functional", vec![Value::pred(&decl.name)])?;
            }
            if decl.is_type {
                db.insert("type_pred", vec![Value::pred(&decl.name)])?;
            }
        }

        // User meta-facts: ground facts that mention at least one quoted
        // predicate argument, e.g. `exportable(`path).` or
        // `trustworthyPerPred[`creditscore]("CA").`
        for fact in program.facts() {
            let mentions_pred = fact
                .atom
                .terms
                .iter()
                .any(|t| matches!(t, Term::Const(Value::Pred(_))))
                || !matches!(fact.atom.pred, secureblox_datalog::ast::PredRef::Named(_));
            if !mentions_pred {
                continue;
            }
            let name = secureblox_datalog::eval::runtime_pred_name(&fact.atom.pred)?;
            let mut tuple = Vec::with_capacity(fact.atom.terms.len());
            let mut ground = true;
            for term in &fact.atom.terms {
                match term {
                    Term::Const(v) => tuple.push(v.clone()),
                    _ => {
                        ground = false;
                        break;
                    }
                }
            }
            if ground {
                db.insert(&name, tuple)?;
            }
        }
        Ok(db)
    }

    /// Insert a meta-fact; returns whether it is new.
    pub fn insert(&mut self, pred: &str, tuple: Tuple) -> Result<bool> {
        let relation = self
            .relations
            .entry(pred.to_string())
            .or_insert_with(|| Relation::new(pred, None));
        relation.insert(tuple)
    }

    /// True if the meta-fact is present.
    pub fn contains(&self, pred: &str, tuple: &[Value]) -> bool {
        self.relations.get(pred).is_some_and(|r| r.contains(tuple))
    }

    /// All tuples of one meta-predicate.
    pub fn tuples(&self, pred: &str) -> Vec<Tuple> {
        self.relations
            .get(pred)
            .map(|r| r.sorted())
            .unwrap_or_default()
    }

    /// The arity recorded for a concrete predicate, if known.
    pub fn arity_of(&self, pred: &str) -> Option<usize> {
        self.relations.get("pred_arity").and_then(|rel| {
            rel.iter()
                .find(|t| t.first().and_then(|v| v.as_pred()) == Some(pred))
                .and_then(|t| t.get(1))
                .and_then(|v| v.as_int())
                .map(|n| n as usize)
        })
    }

    /// Record a newly generated predicate so later generic rules can see it.
    pub fn add_generated_predicate(
        &mut self,
        name: &str,
        arity: usize,
        functional: bool,
    ) -> Result<()> {
        self.insert("predicate", vec![Value::pred(name)])?;
        self.insert(
            "pred_arity",
            vec![Value::pred(name), Value::Int(arity as i64)],
        )?;
        if functional {
            self.insert("functional", vec![Value::pred(name)])?;
        }
        Ok(())
    }

    /// Borrow the underlying relations (for joins and constraint checks).
    pub fn relations(&self) -> &HashMap<String, Relation> {
        &self.relations
    }

    /// Total number of meta-facts (used to detect fixpoint).
    pub fn total_facts(&self) -> usize {
        self.relations.values().map(|r| r.len()).sum()
    }
}

/// Collect the names of meta-predicates referenced by the bodies of generic
/// rules and constraints in a program — useful for diagnostics.
pub fn referenced_meta_predicates(program: &Program) -> Vec<String> {
    let mut names = Vec::new();
    let visit_literals = |literals: &[Literal], names: &mut Vec<String>| {
        for literal in literals {
            if let Literal::Pos(atom) | Literal::Neg(atom) = literal {
                if let Ok(name) = secureblox_datalog::eval::runtime_pred_name(&atom.pred) {
                    if !names.contains(&name) {
                        names.push(name);
                    }
                }
            }
        }
    };
    for statement in &program.statements {
        match statement {
            Statement::GenericRule(g) => visit_literals(&g.body, &mut names),
            Statement::GenericConstraint(g) => {
                visit_literals(&g.lhs, &mut names);
                visit_literals(&g.rhs, &mut names);
            }
            _ => {}
        }
    }
    names.sort();
    names
}

#[cfg(test)]
mod tests {
    use super::*;
    use secureblox_datalog::parse_program;

    fn build(source: &str) -> MetaDatabase {
        let program = parse_program(source).unwrap();
        let mut schema = Schema::new();
        schema.absorb_program(&program).unwrap();
        MetaDatabase::from_program(&program, &schema).unwrap()
    }

    #[test]
    fn predicates_and_arities_recorded() {
        let db = build(
            "link(N1, N2) -> node(N1), node(N2).\n\
             path[P, S, D] = C -> pathvar(P), node(S), node(D), int[32](C).\n\
             reachable(X, Y) <- link(X, Y).",
        );
        assert!(db.contains("predicate", &[Value::pred("link")]));
        assert!(db.contains("predicate", &[Value::pred("reachable")]));
        assert_eq!(db.arity_of("path"), Some(4));
        assert_eq!(db.arity_of("link"), Some(2));
        assert!(db.contains("functional", &[Value::pred("path")]));
        assert!(!db.contains("functional", &[Value::pred("link")]));
        assert!(db.contains("type_pred", &[Value::pred("node")]));
    }

    #[test]
    fn user_meta_facts_copied() {
        let db = build(
            "reachable(X, Y) <- link(X, Y).\n\
             exportable(`reachable).\n\
             trustworthyPerPred[`creditscore](\"CA\").\n\
             plain_fact(n1, n2).",
        );
        assert!(db.contains("exportable", &[Value::pred("reachable")]));
        assert_eq!(db.tuples("trustworthyPerPred$creditscore").len(), 1);
        // Plain ground facts with no predicate arguments are not meta-facts.
        assert!(db.tuples("plain_fact").is_empty());
    }

    #[test]
    fn generated_predicates_become_visible() {
        let mut db = build("reachable(X, Y) <- link(X, Y).");
        db.add_generated_predicate("says$reachable", 4, false)
            .unwrap();
        assert!(db.contains("predicate", &[Value::pred("says$reachable")]));
        assert_eq!(db.arity_of("says$reachable"), Some(4));
    }

    #[test]
    fn referenced_meta_predicates_listed() {
        let program = parse_program(
            "says(P, SP) --> exportable(P).\n\
             '{ T(V*) <- says[T](P, self[], V*). } <-- predicate(T), exportable(T).",
        )
        .unwrap();
        let names = referenced_meta_predicates(&program);
        assert!(names.contains(&"predicate".to_string()));
        assert!(names.contains(&"exportable".to_string()));
        assert!(names.contains(&"says".to_string()));
    }

    #[test]
    fn arity_of_unknown_is_none() {
        let db = build("a(X) <- b(X).");
        assert_eq!(db.arity_of("zzz"), None);
        assert_eq!(db.total_facts() > 0, true);
    }
}
