//! Compile-time verification of generic constraints.
//!
//! "One of the distinguishing features of BloxGenerics is that it allows
//! programmers to specify the necessary correctness criteria for generated
//! code using generic constraints.  The compiler guarantees that all possible
//! code generated from a template will obey the specified constraint before
//! the actual code generation" (paper §4.1.4).
//!
//! Because generic rules are evaluated to a fixpoint over the meta-database
//! before any code is emitted, verifying a generic constraint reduces to an
//! ordinary integrity-constraint check over the final meta-database: for
//! every binding satisfying the left-hand side there must exist an extension
//! satisfying the right-hand side.  A violation rejects the whole program at
//! compile time.

use crate::meta::MetaDatabase;
use secureblox_datalog::ast::{Constraint, GenericConstraint};
use secureblox_datalog::constraint::check_constraint;
use secureblox_datalog::error::{DatalogError, Result};
use secureblox_datalog::udf::UdfRegistry;

/// Check one generic constraint against the meta-database.
pub fn check_generic_constraint(constraint: &GenericConstraint, meta: &MetaDatabase) -> Result<()> {
    let as_constraint = Constraint {
        lhs: constraint.lhs.clone(),
        rhs: constraint.rhs.clone(),
    };
    let udfs = UdfRegistry::new();
    check_constraint(&as_constraint, meta.relations(), &udfs).map_err(|error| match error {
        DatalogError::ConstraintViolation(violation) => DatalogError::Generics(format!(
            "generic constraint violated at compile time: {} (witness {})",
            violation.constraint, violation.witness
        )),
        other => other,
    })
}

/// Check every generic constraint; the first violation rejects the program.
pub fn check_generic_constraints(
    constraints: &[GenericConstraint],
    meta: &MetaDatabase,
) -> Result<()> {
    for constraint in constraints {
        check_generic_constraint(constraint, meta)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use secureblox_datalog::parse_program;
    use secureblox_datalog::value::Value;

    fn generic_constraints(source: &str) -> Vec<GenericConstraint> {
        parse_program(source)
            .unwrap()
            .generic_constraints()
            .cloned()
            .collect()
    }

    #[test]
    fn satisfied_constraint_passes() {
        let mut meta = MetaDatabase::default();
        meta.insert("says", vec![Value::pred("path"), Value::pred("says$path")])
            .unwrap();
        meta.insert("exportable", vec![Value::pred("path")])
            .unwrap();
        let constraints = generic_constraints("says(P, SP) --> exportable(P).");
        check_generic_constraints(&constraints, &meta).unwrap();
    }

    #[test]
    fn violated_constraint_rejects_program() {
        let mut meta = MetaDatabase::default();
        meta.insert(
            "says",
            vec![
                Value::pred("secret_table"),
                Value::pred("says$secret_table"),
            ],
        )
        .unwrap();
        let constraints = generic_constraints("says(P, SP) --> exportable(P).");
        let err = check_generic_constraints(&constraints, &meta).unwrap_err();
        match err {
            DatalogError::Generics(message) => {
                assert!(message.contains("secret_table"), "{message}");
            }
            other => panic!("expected a generics error, got {other}"),
        }
    }

    #[test]
    fn empty_meta_database_is_vacuously_fine() {
        let meta = MetaDatabase::default();
        let constraints = generic_constraints("says(P, SP) --> exportable(P).");
        check_generic_constraints(&constraints, &meta).unwrap();
    }
}
