//! # secureblox-generics
//!
//! **BloxGenerics**: the static meta-programming facility of SecureBlox
//! (paper §4).  Security policies are *meta-programs* — rules and constraints
//! over the structure of DatalogLB programs — and this crate compiles them,
//! together with the application queries, into plain DatalogLB that the
//! `secureblox-datalog` engine can install and evaluate.
//!
//! The compiler implements the four BloxGenerics language features:
//!
//! * **Generic rules** (`<--`): derive facts about program elements.  Head
//!   atoms may contain *head-existential* predicate variables (e.g.
//!   `says[T] = ST`), for which the compiler mints a fresh concrete predicate
//!   per binding (`says$reachable` for `T = reachable`).
//! * **Code templates** (`` '{ … } ``): DatalogLB statements quoted inside a
//!   generic rule; one copy is emitted per satisfying binding, with predicate
//!   variables and parameterized references substituted.
//! * **Variable-length argument sequences** (`V*`): expand to as many fresh
//!   variables as the parameter predicate's arity.
//! * **Generic constraints** (`-->`): compile-time correctness criteria over
//!   the meta-level facts; a violated generic constraint rejects the program
//!   before any code is generated for execution.
//!
//! Compilation is a fixpoint over the meta-level facts (paper Figure 3): the
//! input program is converted to its relational representation (`predicate`,
//! `pred_arity`, user meta-facts such as `exportable`), generic rules are
//! evaluated until no new meta-facts or instantiations appear (with an
//! iteration budget, since head-existentials escape Datalog's P-time
//! guarantee), generic constraints are verified, and the generated DatalogLB
//! statements are reified into an ordinary program.
//!
//! ```
//! use secureblox_datalog::parse_program;
//! use secureblox_generics::GenericsCompiler;
//!
//! let source = r#"
//!     link(N1, N2) -> node(N1), node(N2).
//!     reachable(X, Y) -> node(X), node(Y).
//!     exportable(`reachable).
//!
//!     // The says policy: authentication only.
//!     says[T] = ST, predicate(ST),
//!     '{ ST(P1, P2, V*) -> principal(P1), principal(P2), types[T](V*). }
//!     <-- predicate(T), exportable(T).
//!
//!     reachable(X, Y) <- link(X, Y).
//!     reachable(X, Y) <- link(X, Z), says[`reachable](Z, self[], Z, Y).
//! "#;
//! let program = parse_program(source).unwrap();
//! let compiled = GenericsCompiler::new().compile(&program).unwrap();
//! // The quoted constraint has been instantiated for `reachable` and the
//! // parameterized reference resolved to the mangled concrete name.
//! assert!(compiled.program.to_string().contains("says$reachable"));
//! ```

pub mod compiler;
pub mod constraint_check;
pub mod meta;
pub mod template;

pub use compiler::{CompiledProgram, GenericsCompiler, GenericsConfig};
pub use meta::MetaDatabase;

/// Mangle a parameterized predicate reference (``says[`path]``) into its
/// concrete runtime name (`says$path`).  This single convention is shared by
/// the compiler, the datalog evaluator and the distributed runtime.
pub fn mangle(generic: &str, param: &str) -> String {
    format!("{generic}${param}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mangling_convention() {
        assert_eq!(mangle("says", "reachable"), "says$reachable");
        assert_eq!(mangle("sig", "path"), "sig$path");
    }
}
