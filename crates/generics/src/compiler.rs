//! The BloxGenerics compiler: fixpoint evaluation of generic rules, template
//! instantiation, generic-constraint checking, and reification of the final
//! DatalogLB program (paper Figure 3).

use crate::constraint_check::check_generic_constraints;
use crate::mangle;
use crate::meta::MetaDatabase;
use crate::template::InstantiationContext;
use secureblox_datalog::ast::{
    Atom, Constraint, FactDecl, GenericRule, Literal, PredRef, Program, Rule, Statement, Term,
};
use secureblox_datalog::error::{DatalogError, Result};
use secureblox_datalog::eval::join::JoinContext;
use secureblox_datalog::eval::Bindings;
use secureblox_datalog::schema::Schema;
use secureblox_datalog::udf::UdfRegistry;
use secureblox_datalog::value::Value;
use std::collections::{HashMap, HashSet};

/// Compiler limits.
#[derive(Debug, Clone)]
pub struct GenericsConfig {
    /// Maximum number of fixpoint rounds over the generic rules.  Because
    /// head-existential variables can mint unboundedly many new predicates,
    /// exceeding the budget is reported as a compile-time error, matching the
    /// paper's behaviour ("the current BloxGenerics compiler throws a compiler
    /// error if no fixpoint is reached within a time limit", §4.1.1).
    pub max_rounds: usize,
}

impl Default for GenericsConfig {
    fn default() -> Self {
        GenericsConfig { max_rounds: 64 }
    }
}

/// The output of BloxGenerics compilation.
#[derive(Debug, Clone)]
pub struct CompiledProgram {
    /// The full concrete program: the input's concrete statements (with
    /// parameterized references resolved) followed by all generated
    /// statements.
    pub program: Program,
    /// Only the statements generated from templates, for inspection.
    pub generated: Vec<Statement>,
    /// Predicate mappings minted by generic rules, e.g.
    /// `("says", "path") → "says$path"`.
    pub mappings: HashMap<(String, String), String>,
}

impl CompiledProgram {
    /// Number of generated statements.
    pub fn generated_count(&self) -> usize {
        self.generated.len()
    }

    /// Look up the concrete predicate minted for `generic[param]`.
    pub fn mapping(&self, generic: &str, param: &str) -> Option<&str> {
        self.mappings
            .get(&(generic.to_string(), param.to_string()))
            .map(|s| s.as_str())
    }
}

/// The BloxGenerics compiler.
#[derive(Debug, Clone, Default)]
pub struct GenericsCompiler {
    config: GenericsConfig,
}

impl GenericsCompiler {
    /// A compiler with default limits.
    pub fn new() -> Self {
        GenericsCompiler {
            config: GenericsConfig::default(),
        }
    }

    /// A compiler with a custom configuration.
    pub fn with_config(config: GenericsConfig) -> Self {
        GenericsCompiler { config }
    }

    /// Compile `input` (queries plus security policies) into plain DatalogLB.
    pub fn compile(&self, input: &Program) -> Result<CompiledProgram> {
        // Split the input into concrete statements and meta-level statements.
        let mut concrete = Program::new();
        let mut generic_rules: Vec<GenericRule> = Vec::new();
        for statement in &input.statements {
            match statement {
                Statement::GenericRule(g) => generic_rules.push(g.clone()),
                Statement::GenericConstraint(_) => {}
                other => concrete.statements.push(other.clone()),
            }
        }
        let generic_constraints: Vec<_> = input.generic_constraints().cloned().collect();

        // Generic predicates that are *defined* as predicate-to-predicate
        // mappings by some generic rule head (e.g. `says[T] = ST`).  A
        // concrete reference `says[`p]` to one of these is only legal if a
        // mapping for `p` was actually generated — otherwise the reference
        // escaped the policy's scope (e.g. `p` is not exportable).
        let mut mapping_generics: HashSet<String> = HashSet::new();
        for rule in &generic_rules {
            for atom in &rule.head {
                if atom.functional && atom.terms.len() >= 2 {
                    if let (PredRef::Named(generic), Some(Term::Var(_))) =
                        (&atom.pred, atom.terms.last())
                    {
                        mapping_generics.insert(generic.clone());
                    }
                }
            }
        }

        // Schema of the concrete program (type declarations drive `types[T]`
        // expansion and sequence arities).
        let mut schema = Schema::new();
        schema.absorb_program(&concrete)?;

        // Relational representation of the program.
        let mut meta = MetaDatabase::from_program(input, &schema)?;

        // Fixpoint over the generic rules.
        let udfs = UdfRegistry::new();
        let mut generated: Vec<Statement> = Vec::new();
        let mut generated_seen: HashSet<String> = HashSet::new();
        let mut instantiated: HashSet<(usize, String)> = HashSet::new();
        let mut mappings: HashMap<(String, String), String> = HashMap::new();
        let mut rounds = 0usize;
        loop {
            rounds += 1;
            if rounds > self.config.max_rounds {
                return Err(DatalogError::Generics(format!(
                    "generic-rule evaluation did not reach a fixpoint within {} rounds; \
                     a generic rule is probably generating predicates for its own output \
                     (guard it with a condition such as exportable(T))",
                    self.config.max_rounds
                )));
            }
            let mut changed = false;
            for (rule_index, generic_rule) in generic_rules.iter().enumerate() {
                let solutions = {
                    let ctx = JoinContext::new(meta.relations(), &udfs);
                    let mut solutions: Vec<Bindings> = Vec::new();
                    let mut bindings = Bindings::new();
                    ctx.join(&generic_rule.body, None, &mut bindings, &mut |b| {
                        solutions.push(b.clone());
                        Ok(())
                    })?;
                    solutions
                };
                // Meta relations are hash-based; sort the bindings so code
                // generation (and therefore the output program) is
                // deterministic for a given input.
                let mut solutions = solutions;
                solutions.sort_by_key(|b| b.render());
                for solution in solutions {
                    let key = (rule_index, solution.render());
                    if instantiated.contains(&key) {
                        continue;
                    }
                    instantiated.insert(key);
                    changed = true;

                    let pred_var_names =
                        self.mint_head_predicates(generic_rule, &solution, &mut mappings)?;
                    self.record_head_meta_facts(
                        generic_rule,
                        &solution,
                        &pred_var_names,
                        &mut meta,
                    )?;

                    let seq_arity = self.sequence_arity(&solution, &meta);
                    let ictx = InstantiationContext {
                        bindings: &solution,
                        pred_var_names: &pred_var_names,
                        seq_arity,
                        schema: &schema,
                    };
                    let mut batch = Program::new();
                    for template in &generic_rule.templates {
                        for statement in ictx.instantiate_template(template)? {
                            let text = format!("{statement:?}");
                            if generated_seen.insert(text) {
                                batch.statements.push(statement.clone());
                                generated.push(statement);
                            }
                        }
                    }
                    // Make the generated code visible to later rounds: its
                    // schema (new predicates, their arities and types) feeds
                    // both `types[…]` expansion and the meta-database.
                    schema.absorb_program(&batch)?;
                    for statement in &batch.statements {
                        self.register_generated_predicates(statement, &mut meta)?;
                    }
                }
            }
            if !changed {
                break;
            }
        }

        // Compile-time verification of generic constraints over the final
        // meta-database.
        check_generic_constraints(&generic_constraints, &meta)?;

        // Resolve parameterized references in the concrete statements and
        // assemble the output program.
        let mut program = Program::new();
        for statement in &concrete.statements {
            program
                .statements
                .push(self.resolve_statement(statement, &meta, &mapping_generics)?);
        }
        program.statements.extend(generated.iter().cloned());
        Ok(CompiledProgram {
            program,
            generated,
            mappings,
        })
    }

    /// Mint concrete names for head-existential predicate variables.  A
    /// functional head atom `generic[T] = ST` (with `T` bound to a quoted
    /// predicate and `ST` unbound) names the new predicate `generic$param`.
    fn mint_head_predicates(
        &self,
        generic_rule: &GenericRule,
        solution: &Bindings,
        mappings: &mut HashMap<(String, String), String>,
    ) -> Result<HashMap<String, String>> {
        let mut names: HashMap<String, String> = HashMap::new();
        for atom in &generic_rule.head {
            if !atom.functional || atom.terms.len() < 2 {
                continue;
            }
            let PredRef::Named(generic) = &atom.pred else {
                continue;
            };
            let Term::Var(target) = &atom.terms[atom.terms.len() - 1] else {
                continue;
            };
            if solution.is_bound(target) {
                continue;
            }
            // Build the parameter string from the key terms.
            let mut params: Vec<String> = Vec::new();
            for term in &atom.terms[..atom.terms.len() - 1] {
                match term {
                    Term::Var(v) => match solution.get(v) {
                        Some(Value::Pred(p)) => params.push(p.to_string()),
                        Some(other) => params.push(other.to_string()),
                        None => {
                            return Err(DatalogError::Generics(format!(
                                "head mapping {generic}[…]={target}: key variable {v} is not bound \
                                 by the generic rule body"
                            )))
                        }
                    },
                    Term::Const(Value::Pred(p)) => params.push(p.to_string()),
                    Term::Const(other) => params.push(other.to_string()),
                    other => {
                        return Err(DatalogError::Generics(format!(
                            "unsupported key term {other} in generic head mapping {generic}"
                        )))
                    }
                }
            }
            let param = params.join("_");
            let name = mangle(generic, &param);
            names.insert(target.clone(), name.clone());
            mappings.insert((generic.clone(), param), name);
        }
        Ok(names)
    }

    /// Insert the generic rule's head atoms as meta-facts so that other
    /// generic rules (and generic constraints) can observe them.
    fn record_head_meta_facts(
        &self,
        generic_rule: &GenericRule,
        solution: &Bindings,
        pred_var_names: &HashMap<String, String>,
        meta: &mut MetaDatabase,
    ) -> Result<()> {
        for atom in &generic_rule.head {
            let name = match &atom.pred {
                PredRef::Named(n) => n.clone(),
                PredRef::Parameterized { generic, param } => mangle(generic, param),
                other => {
                    return Err(DatalogError::Generics(format!(
                        "unsupported head predicate reference {other} in a generic rule"
                    )))
                }
            };
            let mut tuple = Vec::with_capacity(atom.terms.len());
            for term in &atom.terms {
                let value = match term {
                    Term::Var(v) => {
                        if let Some(minted) = pred_var_names.get(v) {
                            Value::pred(minted)
                        } else if let Some(bound) = solution.get(v) {
                            bound.clone()
                        } else {
                            return Err(DatalogError::Generics(format!(
                                "meta variable {v} in the head of a generic rule is not bound"
                            )));
                        }
                    }
                    Term::Const(v) => v.clone(),
                    other => {
                        return Err(DatalogError::Generics(format!(
                            "unsupported term {other} in the head of a generic rule"
                        )))
                    }
                };
                tuple.push(value);
            }
            meta.insert(&name, tuple)?;
        }
        Ok(())
    }

    /// Decide the expansion length for `V*` sequences: the arity of the
    /// parameter predicate bound by the rule body.  When several predicate
    /// parameters are bound they must agree.
    fn sequence_arity(&self, solution: &Bindings, meta: &MetaDatabase) -> Option<usize> {
        let mut arities: Vec<usize> = Vec::new();
        for (_, value) in solution.sorted_items() {
            if let Value::Pred(p) = value {
                if let Some(arity) = meta.arity_of(&p) {
                    arities.push(arity);
                }
            }
        }
        arities.sort();
        arities.dedup();
        match arities.as_slice() {
            [single] => Some(*single),
            _ => None,
        }
    }

    /// Record every predicate that appears in a generated statement so later
    /// rounds (and diagnostics) can see it in the meta-database.
    fn register_generated_predicates(
        &self,
        statement: &Statement,
        meta: &mut MetaDatabase,
    ) -> Result<()> {
        let visit_atom = |atom: &Atom, meta: &mut MetaDatabase| -> Result<()> {
            if let PredRef::Named(name) = &atom.pred {
                if meta.arity_of(name).is_none() {
                    meta.add_generated_predicate(name, atom.terms.len(), atom.functional)?;
                }
            }
            Ok(())
        };
        match statement {
            Statement::Rule(rule) => {
                for atom in &rule.head {
                    visit_atom(atom, meta)?;
                }
                for literal in &rule.body {
                    if let Literal::Pos(a) | Literal::Neg(a) = literal {
                        visit_atom(a, meta)?;
                    }
                }
            }
            Statement::Constraint(constraint) => {
                for literal in constraint.lhs.iter().chain(constraint.rhs.iter()) {
                    if let Literal::Pos(a) | Literal::Neg(a) = literal {
                        visit_atom(a, meta)?;
                    }
                }
            }
            Statement::Fact(fact) => visit_atom(&fact.atom, meta)?,
            Statement::GenericRule(_) | Statement::GenericConstraint(_) => {}
        }
        Ok(())
    }

    /// Resolve parameterized references (``says[`path]``) in a concrete
    /// statement to their mangled names, validating that a mapping for the
    /// parameter was actually generated when the generic predicate has
    /// mappings at all.
    fn resolve_statement(
        &self,
        statement: &Statement,
        meta: &MetaDatabase,
        mapping_generics: &HashSet<String>,
    ) -> Result<Statement> {
        let resolve_pred = |pred: &PredRef| -> Result<PredRef> {
            match pred {
                PredRef::Parameterized { generic, param } => {
                    let defines_mappings =
                        mapping_generics.contains(generic) || !meta.tuples(generic).is_empty();
                    let mapped = meta
                        .tuples(generic)
                        .iter()
                        .any(|t| t.first().and_then(|v| v.as_pred()) == Some(param.as_str()));
                    if defines_mappings && !mapped {
                        return Err(DatalogError::Generics(format!(
                            "{generic}[`{param}] is used but no generic rule generated a {generic} \
                             mapping for {param}; is {param} missing from the policy's scope \
                             (e.g. not exportable)?"
                        )));
                    }
                    Ok(PredRef::Named(mangle(generic, param)))
                }
                other => Ok(other.clone()),
            }
        };
        let resolve_atom = |atom: &Atom| -> Result<Atom> {
            Ok(Atom {
                pred: resolve_pred(&atom.pred)?,
                terms: atom.terms.clone(),
                functional: atom.functional,
            })
        };
        let resolve_literal = |literal: &Literal| -> Result<Literal> {
            Ok(match literal {
                Literal::Pos(a) => Literal::Pos(resolve_atom(a)?),
                Literal::Neg(a) => Literal::Neg(resolve_atom(a)?),
                Literal::Cmp(l, op, r) => Literal::Cmp(l.clone(), *op, r.clone()),
            })
        };
        Ok(match statement {
            Statement::Rule(rule) => Statement::Rule(Rule {
                head: rule
                    .head
                    .iter()
                    .map(&resolve_atom)
                    .collect::<Result<Vec<_>>>()?,
                body: rule
                    .body
                    .iter()
                    .map(&resolve_literal)
                    .collect::<Result<Vec<_>>>()?,
                agg: rule.agg.clone(),
            }),
            Statement::Constraint(constraint) => Statement::Constraint(Constraint {
                lhs: constraint
                    .lhs
                    .iter()
                    .map(&resolve_literal)
                    .collect::<Result<Vec<_>>>()?,
                rhs: constraint
                    .rhs
                    .iter()
                    .map(&resolve_literal)
                    .collect::<Result<Vec<_>>>()?,
            }),
            Statement::Fact(fact) => Statement::Fact(FactDecl {
                atom: resolve_atom(&fact.atom)?,
            }),
            other => other.clone(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use secureblox_datalog::parse_program;
    use secureblox_datalog::Workspace;

    const SAYS_POLICY: &str = r#"
        says[T] = ST, predicate(ST),
        '{
          ST(P1, P2, V*) -> principal(P1), principal(P2), types[T](V*).
        }
        <-- predicate(T), exportable(T).
    "#;

    const IMPORT_POLICY: &str = r#"
        '{ T(V*) <- says[T](P, self[], V*), trustworthy(P). }
        <-- predicate(T), exportable(T).
    "#;

    fn reachable_app() -> String {
        r#"
        link(N1, N2) -> node(N1), node(N2).
        reachable(X, Y) -> node(X), node(Y).
        exportable(`reachable).

        reachable(X, Y) <- link(X, Y).
        reachable(X, Y) <- link(X, Z), says[`reachable](Z, self[], Z, Y).
        "#
        .to_string()
    }

    #[test]
    fn says_policy_generates_constraint_and_mapping() {
        let source = format!("{}\n{}", reachable_app(), SAYS_POLICY);
        let program = parse_program(&source).unwrap();
        let compiled = GenericsCompiler::new().compile(&program).unwrap();
        assert_eq!(
            compiled.mapping("says", "reachable"),
            Some("says$reachable")
        );
        let text = compiled.program.to_string();
        assert!(text.contains("says$reachable(P1, P2, V$0, V$1) -> principal(P1), principal(P2), node(V$0), node(V$1)."), "{text}");
        // The parameterized reference in the application rule is resolved.
        assert!(text.contains("says$reachable(Z, self[], Z, Y)"), "{text}");
        assert_eq!(compiled.generated_count(), 1);
    }

    #[test]
    fn import_policy_and_says_policy_compose() {
        let source = format!("{}\n{}\n{}", reachable_app(), SAYS_POLICY, IMPORT_POLICY);
        let program = parse_program(&source).unwrap();
        let compiled = GenericsCompiler::new().compile(&program).unwrap();
        let text = compiled.program.to_string();
        assert!(
            text.contains(
                "reachable(V$0, V$1) <- says$reachable(P, self[], V$0, V$1), trustworthy(P)."
            ),
            "{text}"
        );
    }

    #[test]
    fn compiled_program_is_installable_and_runs() {
        let source = format!("{}\n{}\n{}", reachable_app(), SAYS_POLICY, IMPORT_POLICY);
        let program = parse_program(&source).unwrap();
        let compiled = GenericsCompiler::new().compile(&program).unwrap();
        let mut ws = Workspace::new();
        ws.install_program(&compiled.program).unwrap();
        ws.set_singleton("self", Value::str("n1")).unwrap();
        for fact in [
            ("principal", "n1"),
            ("principal", "n2"),
            ("trustworthy", "n2"),
            ("node", "n1"),
            ("node", "n2"),
            ("node", "n3"),
        ] {
            ws.assert_fact(fact.0, vec![Value::str(fact.1)]).unwrap();
        }
        ws.assert_fact("link", vec![Value::str("n1"), Value::str("n2")])
            .unwrap();
        // n2 says reachable(n2, n3) to us (n1): accepted because n2 is
        // trustworthy and a known principal.
        ws.transaction(vec![(
            "says$reachable".into(),
            vec![
                Value::str("n2"),
                Value::str("n1"),
                Value::str("n2"),
                Value::str("n3"),
            ],
        )])
        .unwrap();
        assert!(ws.contains_fact("reachable", &[Value::str("n2"), Value::str("n3")]));

        // A fact said by an unknown principal violates the generated
        // constraint and the batch rolls back.
        let err = ws
            .transaction(vec![(
                "says$reachable".into(),
                vec![
                    Value::str("mallory"),
                    Value::str("n1"),
                    Value::str("n2"),
                    Value::str("n9"),
                ],
            )])
            .unwrap_err();
        assert!(matches!(err, DatalogError::ConstraintViolation(_)));
        assert!(!ws.contains_fact("reachable", &[Value::str("n2"), Value::str("n9")]));
    }

    #[test]
    fn generic_constraint_rejects_non_exportable_says() {
        // The says policy is NOT guarded by exportable, and a generic
        // constraint requires every said predicate to be exportable: the
        // compiler must reject the program (paper §4.1.4).
        let source = r#"
            reachable(X, Y) -> node(X), node(Y).
            secret(X) -> node(X).
            exportable(`reachable).

            says[T] = ST, predicate(ST),
            '{ ST(P1, P2, V*) -> principal(P1), principal(P2), types[T](V*). }
            <-- predicate(T).

            says(P, SP) --> exportable(P).
        "#;
        let program = parse_program(source).unwrap();
        let err = GenericsCompiler::new().compile(&program).unwrap_err();
        assert!(matches!(err, DatalogError::Generics(_)), "{err}");
    }

    #[test]
    fn guarding_with_exportable_satisfies_generic_constraint() {
        let source = r#"
            reachable(X, Y) -> node(X), node(Y).
            secret(X) -> node(X).
            exportable(`reachable).

            says[T] = ST, predicate(ST),
            '{ ST(P1, P2, V*) -> principal(P1), principal(P2), types[T](V*). }
            <-- predicate(T), exportable(T).

            says(P, SP) --> exportable(P).
        "#;
        let program = parse_program(source).unwrap();
        let compiled = GenericsCompiler::new().compile(&program).unwrap();
        // Only reachable got a says mapping; secret did not.
        assert_eq!(
            compiled.mapping("says", "reachable"),
            Some("says$reachable")
        );
        assert_eq!(compiled.mapping("says", "secret"), None);
    }

    #[test]
    fn unguarded_self_generating_rule_hits_round_budget() {
        // Without the exportable guard, says$X itself becomes a predicate and
        // the rule fires for it, generating says$says$X, and so on.
        let source = r#"
            reachable(X, Y) -> node(X), node(Y).
            says[T] = ST, predicate(ST),
            '{ ST(P1, P2, V*) -> principal(P1), principal(P2), types[T](V*). }
            <-- predicate(T).
        "#;
        let program = parse_program(source).unwrap();
        let compiler = GenericsCompiler::with_config(GenericsConfig { max_rounds: 8 });
        let err = compiler.compile(&program).unwrap_err();
        assert!(matches!(err, DatalogError::Generics(_)));
        assert!(err.to_string().contains("fixpoint"), "{err}");
    }

    #[test]
    fn unmapped_parameterized_reference_is_rejected() {
        // The application says a predicate that the policy never covered.
        let source = r#"
            reachable(X, Y) -> node(X), node(Y).
            secret(X) -> node(X).
            exportable(`reachable).

            says[T] = ST, predicate(ST),
            '{ ST(P1, P2, V*) -> principal(P1), principal(P2), types[T](V*). }
            <-- predicate(T), exportable(T).

            leak(X) <- says[`secret](P, self[], X).
        "#;
        let program = parse_program(source).unwrap();
        let err = GenericsCompiler::new().compile(&program).unwrap_err();
        assert!(err.to_string().contains("secret"), "{err}");
    }

    #[test]
    fn per_predicate_delegation_policy_compiles() {
        // trustworthyPerPred[T] from paper §6.1.
        let source = r#"
            creditscore(U, S) -> string(U), int[32](S).
            exportable(`creditscore).

            says[T] = ST, predicate(ST),
            '{ ST(P1, P2, V*) -> principal(P1), principal(P2), types[T](V*). }
            <-- predicate(T), exportable(T).

            '{ T(V*) <- says[T](P, self[], V*), trustworthyPerPred[T](P). }
            <-- predicate(T), exportable(T).

            trustworthyPerPred[`creditscore]("CA").
            trustworthyPerPred[`creditscore](U) -> U = "CA".
        "#;
        let program = parse_program(source).unwrap();
        let compiled = GenericsCompiler::new().compile(&program).unwrap();
        let text = compiled.program.to_string();
        assert!(text.contains("creditscore(V$0, V$1) <- says$creditscore(P, self[], V$0, V$1), trustworthyPerPred$creditscore(P)."), "{text}");
        // The concrete fact and constraint for the delegated agency survive.
        assert!(
            text.contains("trustworthyPerPred$creditscore(\"CA\")"),
            "{text}"
        );
    }

    #[test]
    fn multiple_exportable_predicates_each_get_mappings() {
        let source = r#"
            path(P, S, D, C) -> string(P), node(S), node(D), int[32](C).
            pathlink(P, H1, H2) -> string(P), node(H1), node(H2).
            exportable(`path).
            exportable(`pathlink).

            says[T] = ST, predicate(ST),
            '{ ST(P1, P2, V*) -> principal(P1), principal(P2), types[T](V*). }
            <-- predicate(T), exportable(T).
        "#;
        let program = parse_program(source).unwrap();
        let compiled = GenericsCompiler::new().compile(&program).unwrap();
        assert_eq!(compiled.mapping("says", "path"), Some("says$path"));
        assert_eq!(compiled.mapping("says", "pathlink"), Some("says$pathlink"));
        assert_eq!(compiled.generated_count(), 2);
    }
}
