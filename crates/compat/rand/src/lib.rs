//! Offline stand-in for the `rand` crate.
//!
//! The build container cannot reach crates.io, so the workspace vendors the
//! subset of the `rand 0.8` API it uses: a seedable deterministic generator
//! (`rngs::StdRng`), the `Rng`/`SeedableRng` traits with `gen`, `gen_range`
//! and `fill_bytes`, and `seq::SliceRandom::{choose, shuffle}`.
//!
//! `StdRng` here is **xoshiro256++** seeded through SplitMix64 — a
//! well-studied non-cryptographic generator whose statistical quality is more
//! than sufficient for the workloads in this repository (random topologies,
//! Miller–Rabin witnesses, pairwise-secret bytes for a *simulated*
//! deployment).  It is deliberately not the ChaCha-based generator of the real
//! `rand` crate: reproducibility within this workspace is what matters, not
//! stream compatibility with upstream.

/// Uniformly samplable primitive values (the `Standard` distribution of the
/// real crate, collapsed into one trait).
pub trait Standard: Sized {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_uint {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_uint!(u8, u16, u32, usize, i8, i16, i32);

impl Standard for u64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for i64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

impl Standard for u128 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Integer types uniformly samplable from a range (drives type inference the
/// same way `rand`'s `SampleUniform` does: one generic impl per range shape).
pub trait UniformInt: Copy + PartialOrd {
    fn to_i128(self) -> i128;
    fn from_i128(value: i128) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn to_i128(self) -> i128 {
                self as i128
            }
            fn from_i128(value: i128) -> Self {
                value as $t
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

/// Ranges acceptable to [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: UniformInt> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range called with empty range");
        let (start, end) = (self.start.to_i128(), self.end.to_i128());
        let span = (end - start) as u128;
        let offset = (rng.next_u64() as u128) % span;
        T::from_i128(start + offset as i128)
    }
}

impl<T: UniformInt> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        let (start, end) = (self.start().to_i128(), self.end().to_i128());
        assert!(start <= end, "gen_range called with empty range");
        let span = (end - start) as u128 + 1;
        let offset = (rng.next_u64() as u128) % span;
        T::from_i128(start + offset as i128)
    }
}

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range called with empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// The random-generator trait: a 64-bit word source plus derived helpers.
pub trait Rng {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        self.next_u64() as u32
    }

    /// Sample a uniformly distributed value.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Sample uniformly from a range.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// Return true with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }

    /// Fill a byte slice with random data.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Deterministically seedable generators.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (expanded through SplitMix64).
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let state = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { state }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.state;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    use super::Rng;

    /// Random selection and shuffling over slices.
    pub trait SliceRandom {
        type Item;

        /// A uniformly random element, or `None` for an empty slice.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                self.swap(i, rng.gen_range(0..=i));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(10usize..20);
            assert!((10..20).contains(&x));
            let y = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&y));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_produces_varied_bytes() {
        let mut rng = StdRng::seed_from_u64(2);
        let bytes: Vec<u8> = (0..64).map(|_| rng.gen::<u8>()).collect();
        assert!(bytes.iter().collect::<std::collections::HashSet<_>>().len() > 16);
    }

    #[test]
    fn choose_and_shuffle() {
        let mut rng = StdRng::seed_from_u64(3);
        let items = [1, 2, 3, 4];
        assert!(items.choose(&mut rng).is_some());
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let mut deck: Vec<u32> = (0..32).collect();
        deck.shuffle(&mut rng);
        let mut sorted = deck.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..32).collect::<Vec<_>>());
        assert_ne!(deck, sorted, "32-card shuffle left the deck ordered");
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
