//! Offline stand-in for the `criterion` crate.
//!
//! The build container cannot reach crates.io, so the workspace vendors the
//! slice of the Criterion API its benches use: `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`, `Bencher::iter`,
//! `BenchmarkId`, `Throughput`, and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! Statistics are intentionally simple — each benchmark is warmed up briefly
//! and then timed over a fixed wall-clock budget, reporting the mean and
//! best iteration time.  The numbers are honest wall-clock measurements, but
//! there is no outlier analysis, no HTML report, and no saved baselines.
//! `CRITERION_QUICK=1` in the environment shrinks the budget so CI can smoke
//! the benches without paying for full measurement runs.

use std::fmt::Display;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// One measured benchmark, accumulated for the JSON report.
#[derive(Debug, Clone)]
struct BenchRecord {
    label: String,
    mean_ns: u128,
    best_ns: u128,
    iterations: usize,
    throughput: Option<Throughput>,
}

/// Results collected across every group of the current bench binary.
static RESULTS: Mutex<Vec<BenchRecord>> = Mutex::new(Vec::new());

/// Write the accumulated results of this bench binary to
/// `BENCH_<name>.json` (in `SECUREBLOX_BENCH_DIR`, or the working directory
/// — the workspace root under `cargo bench`), so the perf trajectory of the
/// repository is machine-readable run over run.  Called by `criterion_main!`
/// after every group has executed; a binary that measured nothing writes
/// nothing.
pub fn write_bench_report() {
    let results = match RESULTS.lock() {
        Ok(results) => results,
        Err(_) => return,
    };
    if results.is_empty() {
        return;
    }
    let name = std::env::current_exe()
        .ok()
        .and_then(|path| path.file_stem().map(|s| s.to_string_lossy().into_owned()))
        .map(|stem| {
            // Cargo suffixes bench binaries with `-<16 hex chars>`.
            match stem.rsplit_once('-') {
                Some((base, hash))
                    if hash.len() == 16 && hash.bytes().all(|b| b.is_ascii_hexdigit()) =>
                {
                    base.to_string()
                }
                _ => stem,
            }
        })
        .unwrap_or_else(|| "bench".to_string());
    let dir = std::env::var_os("SECUREBLOX_BENCH_DIR")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::path::PathBuf::from("."));
    let mut json = String::from("{\n");
    json.push_str(&format!("  \"bench\": \"{name}\",\n"));
    json.push_str(&format!(
        "  \"quick\": {},\n  \"results\": [\n",
        quick_mode()
    ));
    for (index, record) in results.iter().enumerate() {
        let (throughput_kind, throughput_amount) = match record.throughput {
            Some(Throughput::Bytes(n)) => ("bytes", n),
            Some(Throughput::Elements(n)) => ("elements", n),
            None => ("none", 0),
        };
        json.push_str(&format!(
            "    {{\"label\": \"{}\", \"mean_ns\": {}, \"best_ns\": {}, \"iterations\": {}, \
             \"throughput_kind\": \"{}\", \"throughput_amount\": {}}}{}\n",
            record.label.replace('"', "'"),
            record.mean_ns,
            record.best_ns,
            record.iterations,
            throughput_kind,
            throughput_amount,
            if index + 1 == results.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");
    let path = dir.join(format!("BENCH_{name}.json"));
    if std::fs::write(&path, json).is_ok() {
        println!("bench report written to {}", path.display());
    }
    // Sidecar telemetry snapshot: every counter/gauge/histogram the bench
    // touched, in Prometheus text format, so a perf regression can be
    // cross-read against the runtime's own instrumentation (cache hits,
    // WAL batch sizes, pool queue depth, …) from the same run.
    let telemetry = secureblox_telemetry::prometheus_text();
    if !telemetry.is_empty() {
        let telemetry_path = dir.join(format!("TELEMETRY_{name}.prom"));
        if std::fs::write(&telemetry_path, telemetry).is_ok() {
            println!("telemetry snapshot written to {}", telemetry_path.display());
        }
    }
}

/// Measured iteration driver handed to each benchmark closure.
pub struct Bencher {
    warm_up: Duration,
    measurement: Duration,
    min_samples: usize,
    /// (total elapsed, iterations) accumulated by `iter`.
    result: Option<(Duration, usize, Duration)>,
}

impl Bencher {
    /// Time `routine` repeatedly: a short warm-up, then as many iterations as
    /// fit in the measurement budget (at least `min_samples`).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let warm_deadline = Instant::now() + self.warm_up;
        while Instant::now() < warm_deadline {
            std::hint::black_box(routine());
        }
        let started = Instant::now();
        let mut iterations = 0usize;
        let mut best = Duration::MAX;
        while iterations < self.min_samples || started.elapsed() < self.measurement {
            let t0 = Instant::now();
            std::hint::black_box(routine());
            best = best.min(t0.elapsed());
            iterations += 1;
        }
        self.result = Some((started.elapsed(), iterations, best));
    }
}

/// Throughput annotation (reported alongside the timing).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// Identifier for a parameterized benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.id)
    }
}

fn quick_mode() -> bool {
    std::env::var_os("CRITERION_QUICK").is_some()
}

/// A named group of benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        run_one(
            &label,
            self.warm_up,
            self.measurement,
            self.sample_size,
            self.throughput,
            |b| f(b),
        );
        self
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        run_one(
            &label,
            self.warm_up,
            self.measurement,
            self.sample_size,
            self.throughput,
            |b| f(b, input),
        );
        self
    }

    pub fn finish(&mut self) {}
}

fn run_one(
    label: &str,
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
    throughput: Option<Throughput>,
    mut f: impl FnMut(&mut Bencher),
) {
    let (warm_up, measurement, min_samples) = if quick_mode() {
        (Duration::ZERO, Duration::ZERO, 1)
    } else {
        (warm_up, measurement, sample_size.max(1))
    };
    let mut bencher = Bencher {
        warm_up,
        measurement,
        min_samples,
        result: None,
    };
    f(&mut bencher);
    match bencher.result {
        Some((elapsed, iterations, best)) => {
            let mean = elapsed / iterations.max(1) as u32;
            if let Ok(mut results) = RESULTS.lock() {
                results.push(BenchRecord {
                    label: label.to_string(),
                    mean_ns: mean.as_nanos(),
                    best_ns: best.as_nanos(),
                    iterations,
                    throughput,
                });
            }
            let rate = throughput
                .map(|t| match t {
                    Throughput::Bytes(bytes) => {
                        let mb_s = bytes as f64 / mean.as_secs_f64() / (1024.0 * 1024.0);
                        format!("  {mb_s:>10.1} MiB/s")
                    }
                    Throughput::Elements(n) => {
                        let elems = n as f64 / mean.as_secs_f64();
                        format!("  {elems:>10.0} elem/s")
                    }
                })
                .unwrap_or_default();
            println!(
                "bench {label:<48} mean {:>12?}  best {:>12?}  ({iterations} iters){rate}",
                mean, best
            );
        }
        None => println!("bench {label:<48} (no measurement: closure never called iter)"),
    }
}

/// Top-level benchmark harness handle.
pub struct Criterion {
    default_warm_up: Duration,
    default_measurement: Duration,
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_warm_up: Duration::from_millis(300),
            default_measurement: Duration::from_secs(1),
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    /// Compatibility no-op (the real crate parses CLI flags here).
    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            warm_up: self.default_warm_up,
            measurement: self.default_measurement,
            sample_size: self.default_sample_size,
            throughput: None,
            _criterion: self,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        mut f: F,
    ) -> &mut Self {
        let label = id.to_string();
        run_one(
            &label,
            self.default_warm_up,
            self.default_measurement,
            self.default_sample_size,
            None,
            |b| f(b),
        );
        self
    }
}

/// Re-export of the standard black box (the real crate's own is deprecated in
/// favour of this one).
pub use std::hint::black_box;

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
            $crate::write_bench_report();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_runs_and_reports() {
        std::env::set_var("CRITERION_QUICK", "1");
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        let mut calls = 0usize;
        group
            .sample_size(3)
            .throughput(Throughput::Bytes(1024))
            .bench_function("count", |b| b.iter(|| calls += 1));
        group.finish();
        assert!(calls >= 1);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::from_parameter(16).to_string(), "16");
        assert_eq!(BenchmarkId::new("join", 4).to_string(), "join/4");
    }
}
