//! Offline stand-in for the `bytes` crate.
//!
//! The build container has no network access to crates.io, so the workspace
//! vendors the *tiny* slice of the `bytes` API it actually uses: an immutable,
//! cheaply cloneable byte buffer.  Cheap cloning is the property the simulated
//! network relies on (payloads are moved through a priority queue and
//! inspected by statistics code), and `Arc<[u8]>` provides exactly that.

use std::ops::Deref;
use std::sync::Arc;

/// A cheaply cloneable, immutable contiguous slice of memory.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes {
            data: Arc::from(Vec::new()),
        }
    }

    /// Copy a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            data: Arc::from(data.to_vec()),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Copy the contents out into an owned vector.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }

    /// Borrow the contents as a slice (mirrors the real crate's inherent
    /// method, so callers need no `AsRef` import).
    #[allow(clippy::should_implement_trait)]
    pub fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes {
            data: Arc::from(data),
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Self {
        Bytes::copy_from_slice(data)
    }
}

impl<const N: usize> From<[u8; N]> for Bytes {
    fn from(data: [u8; N]) -> Self {
        Bytes::copy_from_slice(&data)
    }
}

impl From<&str> for Bytes {
    fn from(data: &str) -> Self {
        Bytes::copy_from_slice(data.as_bytes())
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &byte in self.data.iter() {
            for escaped in std::ascii::escape_default(byte) {
                write!(f, "{}", escaped as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl std::iter::FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_cheap_clone() {
        let b = Bytes::from(vec![1u8, 2, 3]);
        let c = b.clone();
        assert_eq!(b, c);
        assert_eq!(b.to_vec(), vec![1, 2, 3]);
        assert_eq!(&b[..2], &[1, 2]);
        assert_eq!(b.len(), 3);
        assert!(!b.is_empty());
        assert!(Bytes::new().is_empty());
    }

    #[test]
    fn debug_escapes() {
        let b = Bytes::from(vec![b'a', 0u8]);
        assert_eq!(format!("{b:?}"), "b\"a\\x00\"");
    }
}
