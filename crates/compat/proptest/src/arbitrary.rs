//! `any::<T>()` — full-range generation for primitive types, with a bias
//! toward boundary values (zero, MAX, MIN) so edge cases show up early.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// Types with a canonical full-range strategy.
pub trait Arbitrary: Sized {
    fn arbitrary_value(rng: &mut TestRng) -> Self;
}

/// Strategy returned by [`any`].
pub struct Any<T> {
    _marker: PhantomData<T>,
}

/// The canonical strategy for `T`'s full value range.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: PhantomData,
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary_value(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary_value(rng: &mut TestRng) -> Self {
                // 1-in-16 cases hit a boundary value.
                if rng.below(16) == 0 {
                    match rng.below(3) {
                        0 => 0 as $t,
                        1 => <$t>::MAX,
                        _ => <$t>::MIN,
                    }
                } else {
                    rng.next_u64() as $t
                }
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for u128 {
    fn arbitrary_value(rng: &mut TestRng) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Arbitrary for bool {
    fn arbitrary_value(rng: &mut TestRng) -> Self {
        rng.gen_bool()
    }
}

impl Arbitrary for char {
    fn arbitrary_value(rng: &mut TestRng) -> Self {
        // Mostly printable ASCII, occasionally any scalar value.
        if rng.below(4) == 0 {
            char::from_u32(rng.next_u64() as u32 % 0xD800).unwrap_or('\u{FFFD}')
        } else {
            (0x20u8 + rng.below(0x5F) as u8) as char
        }
    }
}

impl Arbitrary for f64 {
    fn arbitrary_value(rng: &mut TestRng) -> Self {
        f64::from_bits(rng.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boundaries_show_up() {
        let mut rng = TestRng::seed_from_u64(1);
        let strat = any::<u8>();
        let values: Vec<u8> = (0..2000).map(|_| strat.generate(&mut rng)).collect();
        assert!(values.contains(&0));
        assert!(values.contains(&u8::MAX));
        assert!(
            values
                .iter()
                .collect::<std::collections::HashSet<_>>()
                .len()
                > 100
        );
    }

    #[test]
    fn bool_hits_both() {
        let mut rng = TestRng::seed_from_u64(2);
        let strat = any::<bool>();
        let values: Vec<bool> = (0..64).map(|_| strat.generate(&mut rng)).collect();
        assert!(values.contains(&true) && values.contains(&false));
    }
}
