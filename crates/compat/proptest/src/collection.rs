//! Collection strategies: `vec` and `btree_set`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::collections::BTreeSet;

/// An inclusive size interval for generated collections.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    max: usize,
}

impl SizeRange {
    fn sample(&self, rng: &mut TestRng) -> usize {
        self.min + rng.below(self.max - self.min + 1)
    }
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        SizeRange {
            min: exact,
            max: exact,
        }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(range: std::ops::Range<usize>) -> Self {
        assert!(range.start < range.end, "empty collection size range");
        SizeRange {
            min: range.start,
            max: range.end - 1,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(range: std::ops::RangeInclusive<usize>) -> Self {
        SizeRange {
            min: *range.start(),
            max: *range.end(),
        }
    }
}

/// Strategy for `Vec<S::Value>` with a size drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.sample(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Strategy for `BTreeSet<S::Value>` with a size drawn from `size`
/// (best-effort: duplicates are retried a bounded number of times).
pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S::Value: Ord,
{
    BTreeSetStrategy {
        element,
        size: size.into(),
    }
}

pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for BTreeSetStrategy<S>
where
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
        let target = self.size.sample(rng);
        let mut out = BTreeSet::new();
        let mut attempts = 0usize;
        while out.len() < target && attempts < target * 10 + 16 {
            out.insert(self.element.generate(rng));
            attempts += 1;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arbitrary::any;

    #[test]
    fn vec_sizes_respect_range() {
        let mut rng = TestRng::seed_from_u64(5);
        let strat = vec(any::<u8>(), 2..5);
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
        }
        let exact = vec(any::<u8>(), 7usize);
        assert_eq!(exact.generate(&mut rng).len(), 7);
    }

    #[test]
    fn btree_set_reaches_target_when_space_allows() {
        let mut rng = TestRng::seed_from_u64(6);
        let strat = btree_set(0u32..1_000_000, 3..6);
        for _ in 0..50 {
            let s = strat.generate(&mut rng);
            assert!((3..6).contains(&s.len()));
        }
        // A tiny domain cannot fill a large target; output is still a set.
        let cramped = btree_set(0u32..2, 1..4);
        for _ in 0..20 {
            assert!(!cramped.generate(&mut rng).is_empty());
        }
    }
}
