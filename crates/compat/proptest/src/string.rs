//! String strategies from regex-like patterns.
//!
//! The real proptest lets any `&str` act as a strategy that generates strings
//! matching the pattern.  This stand-in implements the subset of regex syntax
//! the workspace's tests use: literal characters, escaped characters,
//! character classes with ranges (`[a-z0-9_]`, `[ -~]`), the wildcard `.`,
//! and the quantifiers `{m}`, `{m,n}`, `?`, `*`, `+` (unbounded quantifiers
//! are capped at eight repetitions).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

#[derive(Debug, Clone)]
enum Node {
    Literal(char),
    /// Inclusive character ranges; single characters are `(c, c)`.
    Class(Vec<(char, char)>),
    Repeat(Box<Node>, usize, usize),
}

fn parse_class(chars: &mut std::iter::Peekable<std::str::Chars>) -> Vec<(char, char)> {
    let mut ranges = Vec::new();
    loop {
        let c = chars
            .next()
            .expect("unterminated character class in pattern");
        match c {
            ']' => break,
            '\\' => {
                let escaped = chars.next().expect("dangling escape in character class");
                ranges.push(expand_escape(escaped));
            }
            first => {
                if chars.peek() == Some(&'-') {
                    let mut lookahead = chars.clone();
                    lookahead.next(); // the '-'
                    match lookahead.peek() {
                        Some(&']') | None => ranges.push((first, first)),
                        Some(_) => {
                            chars.next(); // consume '-'
                            let last = chars.next().expect("unterminated range in class");
                            assert!(first <= last, "inverted range in character class");
                            ranges.push((first, last));
                        }
                    }
                } else {
                    ranges.push((first, first));
                }
            }
        }
    }
    assert!(!ranges.is_empty(), "empty character class in pattern");
    ranges
}

fn expand_escape(c: char) -> (char, char) {
    match c {
        'd' => ('0', '9'),
        // Single-character classes for everything else (covers \\ \. \- …).
        other => (other, other),
    }
}

fn parse_quantifier(chars: &mut std::iter::Peekable<std::str::Chars>) -> Option<(usize, usize)> {
    const UNBOUNDED_EXTRA: usize = 8;
    match chars.peek() {
        Some('{') => {
            chars.next();
            let mut min_text = String::new();
            let mut max_text = None;
            loop {
                match chars.next().expect("unterminated {} quantifier") {
                    '}' => break,
                    ',' => max_text = Some(String::new()),
                    digit => match &mut max_text {
                        Some(text) => text.push(digit),
                        None => min_text.push(digit),
                    },
                }
            }
            let min: usize = min_text.parse().expect("bad {} quantifier minimum");
            let max = match max_text {
                None => min,
                Some(text) if text.is_empty() => min + UNBOUNDED_EXTRA,
                Some(text) => text.parse().expect("bad {} quantifier maximum"),
            };
            Some((min, max))
        }
        Some('?') => {
            chars.next();
            Some((0, 1))
        }
        Some('*') => {
            chars.next();
            Some((0, UNBOUNDED_EXTRA))
        }
        Some('+') => {
            chars.next();
            Some((1, UNBOUNDED_EXTRA))
        }
        _ => None,
    }
}

fn parse_pattern(pattern: &str) -> Vec<Node> {
    let mut nodes = Vec::new();
    let mut chars = pattern.chars().peekable();
    while let Some(c) = chars.next() {
        let atom = match c {
            '[' => Node::Class(parse_class(&mut chars)),
            '\\' => {
                let escaped = chars.next().expect("dangling escape in pattern");
                let (lo, hi) = expand_escape(escaped);
                if lo == hi {
                    Node::Literal(lo)
                } else {
                    Node::Class(vec![(lo, hi)])
                }
            }
            '.' => Node::Class(vec![(' ', '~')]),
            literal => Node::Literal(literal),
        };
        match parse_quantifier(&mut chars) {
            Some((min, max)) => nodes.push(Node::Repeat(Box::new(atom), min, max)),
            None => nodes.push(atom),
        }
    }
    nodes
}

fn generate_node(node: &Node, rng: &mut TestRng, out: &mut String) {
    match node {
        Node::Literal(c) => out.push(*c),
        Node::Class(ranges) => {
            let total: usize = ranges
                .iter()
                .map(|&(lo, hi)| hi as usize - lo as usize + 1)
                .sum();
            let mut pick = rng.below(total);
            for &(lo, hi) in ranges {
                let span = hi as usize - lo as usize + 1;
                if pick < span {
                    out.push(char::from_u32(lo as u32 + pick as u32).expect("class char"));
                    return;
                }
                pick -= span;
            }
            unreachable!("class pick out of bounds");
        }
        Node::Repeat(inner, min, max) => {
            let count = min + rng.below(max - min + 1);
            for _ in 0..count {
                generate_node(inner, rng, out);
            }
        }
    }
}

impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let nodes = parse_pattern(self);
        let mut out = String::new();
        for node in &nodes {
            generate_node(node, rng, &mut out);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::seed_from_u64(99)
    }

    #[test]
    fn identifier_pattern() {
        let mut rng = rng();
        for _ in 0..200 {
            let s = "[a-z][a-z0-9_]{0,8}".generate(&mut rng);
            assert!(!s.is_empty() && s.len() <= 9, "bad length: {s:?}");
            let mut chars = s.chars();
            assert!(chars.next().unwrap().is_ascii_lowercase());
            assert!(chars.all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'));
        }
    }

    #[test]
    fn printable_ascii_class() {
        let mut rng = rng();
        for _ in 0..100 {
            let s = "[ -~]{0,24}".generate(&mut rng);
            assert!(s.len() <= 24);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)));
        }
    }

    #[test]
    fn prefixed_pattern() {
        let mut rng = rng();
        for _ in 0..100 {
            let s = "p_[a-z][a-z0-9_]{2,8}".generate(&mut rng);
            assert!(s.starts_with("p_"));
            assert!((5..=11).contains(&s.len()), "bad length: {s:?}");
        }
    }

    #[test]
    fn quantifiers_and_escapes() {
        let mut rng = rng();
        for _ in 0..50 {
            let s = "a?b+c*\\dx{2}".generate(&mut rng);
            assert!(s.contains('b'));
            assert!(s.ends_with("xx"));
        }
        // Literal '-' at class edges stays literal.
        for _ in 0..50 {
            let s = "[a\\-z]".generate(&mut rng);
            assert!(["a", "-", "z"].contains(&s.as_str()), "unexpected {s:?}");
        }
    }
}
