//! Deterministic case runner: seeds, configuration, and failure reporting.

/// Deterministic generator driving all strategies (xoshiro256++ seeded via
/// SplitMix64, same construction as the workspace `rand` stand-in).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl TestRng {
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        TestRng {
            state: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// A uniform index in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: usize) -> usize {
        (self.next_u64() % bound as u64) as usize
    }

    /// A uniform f64 in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    pub fn gen_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(256);
        ProptestConfig { cases }
    }
}

/// A failed test case (what `prop_assert!` returns).
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)
    }
}

/// Stable (platform-independent) FNV-1a hash of the test name, so each
/// property gets its own deterministic seed sequence.
fn fnv1a(name: &str) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for byte in name.bytes() {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x1000_0000_01b3);
    }
    hash
}

/// Run `property` for `config.cases` deterministic cases, panicking (like a
/// failed assertion) on the first failing case with enough context to replay
/// it via `PROPTEST_SEED`.
pub fn run_cases<F>(config: ProptestConfig, name: &str, mut property: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let base = std::env::var("PROPTEST_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| fnv1a(name));
    for case in 0..config.cases as u64 {
        let seed = base.wrapping_add(case.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        let mut rng = TestRng::seed_from_u64(seed);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| property(&mut rng)));
        match outcome {
            Ok(Ok(())) => {}
            Ok(Err(error)) => panic!(
                "property `{name}` failed at case {case}/{} (seed {seed}): {error}\n\
                 replay with PROPTEST_SEED={base}",
                config.cases
            ),
            Err(panic) => {
                let message = panic
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| panic.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "<non-string panic>".into());
                panic!(
                    "property `{name}` panicked at case {case}/{} (seed {seed}): {message}\n\
                     replay with PROPTEST_SEED={base}",
                    config.cases
                )
            }
        }
    }
}
