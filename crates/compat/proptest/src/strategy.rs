//! The `Strategy` trait and its combinators.
//!
//! Unlike the real proptest there is no shrinking: a strategy is just a
//! deterministic function from a [`TestRng`] to a value.  Failing cases are
//! replayed exactly (the runner reports the seed), which is the property the
//! workspace's CI relies on.

use crate::test_runner::TestRng;

/// A generator of values of type `Self::Value`.
pub trait Strategy {
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }

    /// Keep only values satisfying `f` (regenerates on rejection).
    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            source: self,
            whence,
            f,
        }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Box::new(self),
        }
    }
}

/// Object-safe mirror of [`Strategy`] used by [`BoxedStrategy`].
trait DynStrategy<V> {
    fn generate_dyn(&self, rng: &mut TestRng) -> V;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased strategy (what `prop_oneof!` arms become).
pub struct BoxedStrategy<V> {
    inner: Box<dyn DynStrategy<V>>,
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        self.inner.generate_dyn(rng)
    }
}

/// Always yields a clone of the given value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The `prop_map` combinator.
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

/// The `prop_filter` combinator (best-effort: panics if the predicate rejects
/// too many candidates in a row).
pub struct Filter<S, F> {
    source: S,
    whence: &'static str,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let candidate = self.source.generate(rng);
            if (self.f)(&candidate) {
                return candidate;
            }
        }
        panic!(
            "prop_filter({}) rejected 1000 candidates in a row",
            self.whence
        );
    }
}

/// Uniform choice between type-erased alternatives (`prop_oneof!`).
pub struct Union<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! requires at least one arm");
        Union { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let arm = rng.below(self.arms.len());
        self.arms[arm].generate(rng)
    }
}

// ---------------------------------------------------------------------------
// Ranges as strategies
// ---------------------------------------------------------------------------

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (start as i128 + offset as i128) as $t
            }
        }

        impl Strategy for std::ops::RangeFrom<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                (self.start..=<$t>::MAX).generate(rng)
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

// ---------------------------------------------------------------------------
// Tuples of strategies
// ---------------------------------------------------------------------------

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::seed_from_u64(42)
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = rng();
        for _ in 0..200 {
            let x = (3usize..9).generate(&mut rng);
            assert!((3..9).contains(&x));
            let y = (1u8..).generate(&mut rng);
            assert!(y >= 1);
            let f = (0.25f64..0.5).generate(&mut rng);
            assert!((0.25..0.5).contains(&f));
            let z = (-4i64..=4).generate(&mut rng);
            assert!((-4..=4).contains(&z));
        }
    }

    #[test]
    fn map_union_just_compose() {
        let mut rng = rng();
        let strat = Union::new(vec![
            Just(0i64).boxed(),
            (10i64..20).prop_map(|v| v * 2).boxed(),
        ]);
        let mut saw_just = false;
        let mut saw_mapped = false;
        for _ in 0..200 {
            match strat.generate(&mut rng) {
                0 => saw_just = true,
                v => {
                    assert!((20..40).contains(&v) && v % 2 == 0);
                    saw_mapped = true;
                }
            }
        }
        assert!(saw_just && saw_mapped);
    }

    #[test]
    fn tuples_generate_componentwise() {
        let mut rng = rng();
        let (a, b, c) = (0u32..4, 10u32..14, 20u32..24).generate(&mut rng);
        assert!(a < 4 && (10..14).contains(&b) && (20..24).contains(&c));
    }

    #[test]
    fn filter_retries() {
        let mut rng = rng();
        for _ in 0..50 {
            let even = (0u32..100)
                .prop_filter("even", |v| v % 2 == 0)
                .generate(&mut rng);
            assert_eq!(even % 2, 0);
        }
    }
}
