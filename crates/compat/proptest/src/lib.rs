//! Offline stand-in for the `proptest` crate.
//!
//! The build container has no access to crates.io, so the workspace vendors
//! the subset of proptest that its property tests use:
//!
//! * the [`strategy::Strategy`] trait with `prop_map` / `prop_filter` /
//!   `boxed`, range strategies, tuple strategies, [`strategy::Just`], and
//!   type-erased unions,
//! * [`arbitrary::any`] for primitives,
//! * [`collection::vec`] and [`collection::btree_set`],
//! * `&str` regex-pattern string strategies (a practical subset of regex),
//! * the [`proptest!`], [`prop_oneof!`], [`prop_assert!`],
//!   [`prop_assert_eq!`], and [`prop_assert_ne!`] macros.
//!
//! **There is no shrinking.**  Cases are generated from a deterministic
//! per-test seed (overridable with `PROPTEST_SEED`), so a failure report
//! identifies the exact case and replays exactly.  The case count comes from
//! `ProptestConfig::with_cases` / `PROPTEST_CASES` (default 256).

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// What `use proptest::prelude::*` brings into scope.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Define property tests.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn addition_commutes(a in any::<u32>(), b in any::<u32>()) {
///         prop_assert_eq!(a as u64 + b as u64, b as u64 + a as u64);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($config:expr)
      $(
          $(#[$meta:meta])*
          fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config = $config;
                $crate::test_runner::run_cases(__config, stringify!($name), |__rng| {
                    $(let $pat = $crate::strategy::Strategy::generate(&($strat), __rng);)+
                    let mut __case = || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    };
                    __case()
                });
            }
        )*
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Assert a condition inside a property (fails the case, not the process).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let __left = $left;
        let __right = $right;
        $crate::prop_assert!(
            __left == __right,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            __left,
            __right
        );
    }};
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let __left = $left;
        let __right = $right;
        $crate::prop_assert!(
            __left != __right,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            __left
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The macro wires patterns, strategies and assertions together.
        #[test]
        fn tuple_patterns_and_asserts((a, b) in (0u32..50, 50u32..100), flip in any::<bool>()) {
            prop_assert!(a < b, "a={a} b={b}");
            prop_assert_ne!(a, b);
            if flip {
                prop_assert_eq!(a + b, b + a);
            }
        }

        /// Early `return Ok(())` works like in real proptest.
        #[test]
        fn early_return_is_fine(x in 0u8..4) {
            if x == 0 {
                return Ok(());
            }
            prop_assert!(x > 0);
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_property_panics_with_case_info() {
        crate::test_runner::run_cases(ProptestConfig::with_cases(8), "always_fails", |_rng| {
            Err(TestCaseError::fail("nope"))
        });
    }

    #[test]
    fn oneof_covers_all_arms() {
        let strat = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut rng = TestRng::seed_from_u64(11);
        let seen: std::collections::BTreeSet<u8> =
            (0..100).map(|_| strat.generate(&mut rng)).collect();
        assert_eq!(seen, [1u8, 2, 3].into_iter().collect());
    }
}
