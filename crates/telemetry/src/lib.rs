//! The SecureBlox telemetry plane.
//!
//! The paper's whole evaluation (§8.1) is measurement — per-node bandwidth,
//! transaction duration, fixpoint latency — and until this crate the repo's
//! instrumentation was a scatter of ad-hoc counters (`PlanStats` in the
//! engine, `NetworkStats` in the simulator) with no timing distributions and
//! no event stream.  This crate gives every runtime crate one shared,
//! zero-dependency observability substrate:
//!
//! * **Metrics** ([`metrics`]): a process-wide registry of named monotonic
//!   [`Counter`]s, [`Gauge`]s, and fixed-bucket log₂-scale [`Histogram`]s
//!   with p50/p90/p99 readout.  Handles are `&'static` and every operation
//!   is a relaxed atomic — no locks on the hot path (the registry lock is
//!   taken once per call *site*, cached through the [`counter!`]/[`gauge!`]/
//!   [`histogram!`] macros).
//! * **Spans** ([`span`]): RAII scopes carrying a target, an optional node
//!   id, and key/value fields.  Closed spans land in a bounded in-memory
//!   ring buffer, and stream as JSON-lines to the file named by the
//!   `SECUREBLOX_TRACE` environment variable when it is set.
//! * **Exporters**: [`prometheus_text`] renders the registry in Prometheus
//!   text exposition format; [`histogram_summaries`] returns the named
//!   quantile summaries embedded in `DeploymentReport`.
//!
//! ## Cost model
//!
//! The disabled paths are genuinely cheap, by construction:
//!
//! * Counters and gauges always count — a single relaxed atomic RMW, the
//!   same cost the pre-existing `PlanStats` counters already paid.
//! * Histogram recording and timer starts check one relaxed atomic flag
//!   ([`metrics_enabled`]); disabled, a timer never even reads the clock.
//! * Span construction checks one relaxed atomic flag ([`tracing_enabled`]);
//!   disabled, [`span()`] returns an empty guard — no allocation, no
//!   formatting, no clock read.
//!
//! The `telemetry_overhead` bench series holds the ≤5% budget on the
//! `pool_triple_join_10k` baseline.
//!
//! Like the `compat` crates, this is a stand-in shaped by what the workspace
//! needs, not a rebuild of `metrics`/`tracing` — the container has no
//! network access, so it depends on `std` alone.

pub mod metrics;
pub mod span;

pub use metrics::{
    histogram_summaries, prometheus_text, registry, Counter, Gauge, Histogram, HistogramSummary,
    Registry, Timer,
};
pub use span::{
    disable_tracing, enable_tracing_to, enable_tracing_to_ring, span, take_spans, tracing_enabled,
    FieldValue, Span, SpanRecord,
};

use std::sync::atomic::{AtomicBool, Ordering};

/// Histogram recording (and timer clock reads) are gated on this flag so the
/// fully-disabled residue is atomic counters only.  Default **on**: the
/// quantile summaries in `DeploymentReport` should exist without opt-in.
static METRICS_ENABLED: AtomicBool = AtomicBool::new(true);

/// True when histograms record and timers read the clock.
#[inline]
pub fn metrics_enabled() -> bool {
    METRICS_ENABLED.load(Ordering::Relaxed)
}

/// Turn histogram recording on or off.  Counters and gauges are unaffected
/// (they are the cheap path).  Used by the effect-free property tests and
/// the `telemetry_overhead` bench to compare both sides of the gate.
pub fn set_metrics_enabled(on: bool) {
    METRICS_ENABLED.store(on, Ordering::Relaxed);
}

/// Serializes unit tests that read or toggle the global metrics flag (the
/// test harness runs tests on concurrent threads).
#[cfg(test)]
pub(crate) fn test_flag_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metrics_flag_round_trips() {
        let _guard = test_flag_lock();
        assert!(metrics_enabled(), "histograms record by default");
        set_metrics_enabled(false);
        assert!(!metrics_enabled());
        set_metrics_enabled(true);
        assert!(metrics_enabled());
    }
}
