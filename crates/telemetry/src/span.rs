//! Structured span tracing.
//!
//! A [`Span`] is an RAII scope: created with a target and a name, optionally
//! tagged with a node id and key/value fields, and *recorded when dropped*
//! with its measured duration.  Closed spans land in a bounded in-memory
//! ring buffer (the newest [`RING_CAPACITY`] survive, for tests and
//! post-mortem inspection) and, when tracing is enabled, stream as one JSON
//! object per line to the trace file.
//!
//! Tracing is **off by default** and enabled either by the
//! `SECUREBLOX_TRACE=<path>` environment variable (read once, lazily) or
//! programmatically with [`enable_tracing_to`].  While disabled, [`span()`]
//! returns an empty guard without reading the clock, allocating, or
//! formatting — the check is one relaxed atomic load.
//!
//! The trace file is opened in append mode and each span is written with a
//! single `write_all` of a complete line, so several processes (the test
//! suite under `cargo test`) can interleave into one file without tearing
//! lines.

use std::collections::VecDeque;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, Once, PoisonError};
use std::time::Instant;

/// Closed spans kept in memory; older spans are dropped first.
pub const RING_CAPACITY: usize = 4096;

static TRACING: AtomicBool = AtomicBool::new(false);
static TRACE_INIT: Once = Once::new();
static SPAN_SEQ: AtomicU64 = AtomicU64::new(0);

fn trace_file() -> &'static Mutex<Option<File>> {
    static FILE: Mutex<Option<File>> = Mutex::new(None);
    &FILE
}

fn ring() -> &'static Mutex<VecDeque<SpanRecord>> {
    static RING: Mutex<VecDeque<SpanRecord>> = Mutex::new(VecDeque::new());
    &RING
}

/// True when spans are being recorded.  The first call reads
/// `SECUREBLOX_TRACE` and opens the file it names, if any.
#[inline]
pub fn tracing_enabled() -> bool {
    TRACE_INIT.call_once(|| {
        if let Ok(path) = std::env::var("SECUREBLOX_TRACE") {
            if !path.is_empty() {
                // A bad path silently leaves tracing off — observability
                // must never take the system down.
                let _ = enable_tracing_to(&path);
            }
        }
    });
    TRACING.load(Ordering::Relaxed)
}

/// Start recording spans, streaming them to `path` (created if missing,
/// appended to if present).
pub fn enable_tracing_to<P: AsRef<Path>>(path: P) -> std::io::Result<()> {
    let file = OpenOptions::new().create(true).append(true).open(path)?;
    *trace_file().lock().unwrap_or_else(PoisonError::into_inner) = Some(file);
    TRACING.store(true, Ordering::Relaxed);
    Ok(())
}

/// Start recording spans into the ring buffer only (no file).  Used by
/// tests that assert on span contents.
pub fn enable_tracing_to_ring() {
    *trace_file().lock().unwrap_or_else(PoisonError::into_inner) = None;
    TRACING.store(true, Ordering::Relaxed);
}

/// Stop recording spans and close the trace file.
pub fn disable_tracing() {
    TRACING.store(false, Ordering::Relaxed);
    *trace_file().lock().unwrap_or_else(PoisonError::into_inner) = None;
}

/// Drain and return the ring buffer (oldest first).
pub fn take_spans() -> Vec<SpanRecord> {
    ring()
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .drain(..)
        .collect()
}

/// A field value attached to a span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FieldValue {
    Int(i64),
    Uint(u64),
    Str(String),
}

impl From<i64> for FieldValue {
    fn from(v: i64) -> Self {
        FieldValue::Int(v)
    }
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::Uint(v)
    }
}

impl From<usize> for FieldValue {
    fn from(v: usize) -> Self {
        FieldValue::Uint(v as u64)
    }
}

impl From<u32> for FieldValue {
    fn from(v: u32) -> Self {
        FieldValue::Uint(v as u64)
    }
}

impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_string())
    }
}

impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}

/// A closed span as kept in the ring buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Monotone per-process sequence number (assigned at close).
    pub seq: u64,
    /// The subsystem, e.g. `"engine"`, `"store"`, `"datalog"`, `"net"`.
    pub target: &'static str,
    /// The operation, e.g. `"update_apply"`, `"checkpoint"`.
    pub name: &'static str,
    /// The node the operation ran on, when meaningful.
    pub node: Option<u64>,
    /// Wall-clock duration of the scope, in nanoseconds.
    pub duration_ns: u64,
    /// Key/value fields attached while the span was open.
    pub fields: Vec<(&'static str, FieldValue)>,
}

impl SpanRecord {
    /// Render as one JSON object (the trace-file line format).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(96);
        out.push_str("{\"seq\":");
        out.push_str(&self.seq.to_string());
        out.push_str(",\"target\":\"");
        push_escaped(&mut out, self.target);
        out.push_str("\",\"name\":\"");
        push_escaped(&mut out, self.name);
        out.push('"');
        if let Some(node) = self.node {
            out.push_str(",\"node\":");
            out.push_str(&node.to_string());
        }
        out.push_str(",\"dur_ns\":");
        out.push_str(&self.duration_ns.to_string());
        if !self.fields.is_empty() {
            out.push_str(",\"fields\":{");
            for (index, (key, value)) in self.fields.iter().enumerate() {
                if index > 0 {
                    out.push(',');
                }
                out.push('"');
                push_escaped(&mut out, key);
                out.push_str("\":");
                match value {
                    FieldValue::Int(v) => out.push_str(&v.to_string()),
                    FieldValue::Uint(v) => out.push_str(&v.to_string()),
                    FieldValue::Str(v) => {
                        out.push('"');
                        push_escaped(&mut out, v);
                        out.push('"');
                    }
                }
            }
            out.push('}');
        }
        out.push('}');
        out
    }
}

/// JSON string escaping (quotes, backslashes, control characters).
fn push_escaped(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// An open span.  Created by [`span()`]; records itself on drop.  When
/// tracing is disabled the guard is empty and every method is a no-op.
#[derive(Debug)]
#[must_use = "a span measures the scope it is alive in"]
pub struct Span {
    inner: Option<SpanInner>,
}

#[derive(Debug)]
struct SpanInner {
    target: &'static str,
    name: &'static str,
    node: Option<u64>,
    fields: Vec<(&'static str, FieldValue)>,
    start: Instant,
}

/// Open a span.  Returns an empty guard (no clock read, no allocation) when
/// tracing is disabled.
#[inline]
pub fn span(target: &'static str, name: &'static str) -> Span {
    if !tracing_enabled() {
        return Span { inner: None };
    }
    Span {
        inner: Some(SpanInner {
            target,
            name,
            node: None,
            fields: Vec::new(),
            start: Instant::now(),
        }),
    }
}

impl Span {
    /// Tag the span with the node it runs on.
    pub fn node(mut self, node: u64) -> Span {
        if let Some(inner) = self.inner.as_mut() {
            inner.node = Some(node);
        }
        self
    }

    /// Attach a key/value field.  `value` conversion is only performed when
    /// the span is live, but the *argument* is evaluated either way — pass
    /// cheap values at hot sites.
    pub fn field(mut self, key: &'static str, value: impl Into<FieldValue>) -> Span {
        if let Some(inner) = self.inner.as_mut() {
            inner.fields.push((key, value.into()));
        }
        self
    }

    /// Attach a key/value field to an already-open span (the non-builder
    /// form, for values only known mid-scope).
    pub fn record_field(&mut self, key: &'static str, value: impl Into<FieldValue>) {
        if let Some(inner) = self.inner.as_mut() {
            inner.fields.push((key, value.into()));
        }
    }

    /// True when this span will record (i.e. tracing was enabled at open).
    pub fn is_recording(&self) -> bool {
        self.inner.is_some()
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(inner) = self.inner.take() else {
            return;
        };
        let record = SpanRecord {
            seq: SPAN_SEQ.fetch_add(1, Ordering::Relaxed),
            target: inner.target,
            name: inner.name,
            node: inner.node,
            duration_ns: inner.start.elapsed().as_nanos().min(u64::MAX as u128) as u64,
            fields: inner.fields,
        };
        if TRACING.load(Ordering::Relaxed) {
            let mut guard = trace_file().lock().unwrap_or_else(PoisonError::into_inner);
            if let Some(file) = guard.as_mut() {
                let mut line = record.to_json();
                line.push('\n');
                // One write of a complete line: concurrent processes
                // appending to the same file cannot tear each other's lines.
                let _ = file.write_all(line.as_bytes());
            }
        }
        let mut ring = ring().lock().unwrap_or_else(PoisonError::into_inner);
        if ring.len() == RING_CAPACITY {
            ring.pop_front();
        }
        ring.push_back(record);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Span tests share the global tracing flag; serialize them with the
    // same lock the metric-flag tests use.

    #[test]
    fn disabled_span_is_empty_and_records_nothing() {
        let _guard = crate::test_flag_lock();
        disable_tracing();
        let _ = take_spans();
        {
            let span = span("test", "noop").node(3).field("k", 1u64);
            assert!(!span.is_recording());
        }
        assert!(take_spans().is_empty());
    }

    #[test]
    fn spans_land_in_the_ring_buffer() {
        let _guard = crate::test_flag_lock();
        enable_tracing_to_ring();
        let _ = take_spans();
        {
            let _span = span("engine", "update_apply")
                .node(2)
                .field("kind", "assert")
                .field("deltas", 5u64);
        }
        disable_tracing();
        let spans = take_spans();
        assert_eq!(spans.len(), 1);
        let record = &spans[0];
        assert_eq!(record.target, "engine");
        assert_eq!(record.name, "update_apply");
        assert_eq!(record.node, Some(2));
        assert_eq!(record.fields.len(), 2);
        assert_eq!(record.fields[1], ("deltas", FieldValue::Uint(5)));
    }

    #[test]
    fn ring_buffer_is_bounded() {
        let _guard = crate::test_flag_lock();
        enable_tracing_to_ring();
        let _ = take_spans();
        for _ in 0..(RING_CAPACITY + 10) {
            let _span = span("test", "tick");
        }
        disable_tracing();
        assert_eq!(take_spans().len(), RING_CAPACITY);
    }

    #[test]
    fn json_lines_are_valid_and_escaped() {
        let record = SpanRecord {
            seq: 7,
            target: "store",
            name: "checkpoint",
            node: Some(1),
            duration_ns: 1234,
            fields: vec![
                ("path", FieldValue::Str("a\"b\\c\nd".to_string())),
                ("bytes", FieldValue::Uint(42)),
                ("delta", FieldValue::Int(-3)),
            ],
        };
        let json = record.to_json();
        assert_eq!(
            json,
            "{\"seq\":7,\"target\":\"store\",\"name\":\"checkpoint\",\"node\":1,\
             \"dur_ns\":1234,\"fields\":{\"path\":\"a\\\"b\\\\c\\nd\",\"bytes\":42,\
             \"delta\":-3}}"
        );
        // No raw control characters or unescaped quotes survive.
        assert!(!json.contains('\n'));
    }

    #[test]
    fn trace_file_receives_one_line_per_span() {
        let _guard = crate::test_flag_lock();
        let path = std::env::temp_dir().join(format!("sbx-trace-test-{}", std::process::id()));
        let _ = std::fs::remove_file(&path);
        enable_tracing_to(&path).unwrap();
        {
            let _span = span("net", "send").field("kind", "update");
        }
        {
            let _span = span("net", "deliver");
        }
        disable_tracing();
        let _ = take_spans();
        let contents = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = contents.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with('{') && lines[0].ends_with('}'));
        assert!(lines[0].contains("\"target\":\"net\""));
        assert!(lines[1].contains("\"name\":\"deliver\""));
        let _ = std::fs::remove_file(&path);
    }
}
