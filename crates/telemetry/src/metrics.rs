//! The metric registry: counters, gauges, and log₂-bucket histograms.
//!
//! Metrics are identified by name and live for the life of the process —
//! the registry leaks one small allocation per *name* so handles can be
//! `&'static` and hot paths never touch the registry lock.  Call sites go
//! through [`counter!`](crate::counter)/[`gauge!`](crate::gauge)/
//! [`histogram!`](crate::histogram), which cache the lookup in a
//! per-call-site `OnceLock`.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock, PoisonError};
use std::time::{Duration, Instant};

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    pub const fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

/// A signed instantaneous value (queue depths, table sizes, lags).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    pub const fn new() -> Self {
        Gauge(AtomicI64::new(0))
    }

    #[inline]
    pub fn set(&self, value: i64) {
        self.0.store(value, Ordering::Relaxed);
    }

    #[inline]
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Record a high-water mark: keeps the maximum of the current value and
    /// `value`.
    #[inline]
    pub fn set_max(&self, value: i64) {
        self.0.fetch_max(value, Ordering::Relaxed);
    }

    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of histogram buckets: value `v` lands in bucket
/// `64 - v.leading_zeros()`, i.e. bucket 0 holds exactly 0, bucket *i* holds
/// `[2^(i-1), 2^i)`, and bucket 64 holds `[2^63, u64::MAX]`.
pub const BUCKETS: usize = 65;

/// A fixed-bucket log₂-scale histogram with atomic buckets.
///
/// Designed for nanosecond latencies: 65 power-of-two buckets cover the full
/// `u64` range with ≤2x relative quantile error, recording is two relaxed
/// RMWs plus a `leading_zeros`, and readout walks the bucket array without
/// stopping writers.  Recording is gated on
/// [`metrics_enabled`](crate::metrics_enabled).
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    sum: AtomicU64,
    count: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    pub const fn new() -> Self {
        #[allow(clippy::declare_interior_mutable_const)]
        const ZERO: AtomicU64 = AtomicU64::new(0);
        Histogram {
            buckets: [ZERO; BUCKETS],
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// The bucket index `value` falls into.
    #[inline]
    pub fn bucket_index(value: u64) -> usize {
        (u64::BITS - value.leading_zeros()) as usize
    }

    /// The largest value bucket `index` can hold (inclusive).
    pub fn bucket_upper_bound(index: usize) -> u64 {
        match index {
            0 => 0,
            64.. => u64::MAX,
            i => (1u64 << i) - 1,
        }
    }

    /// Record one observation.  A no-op while metrics are disabled.
    #[inline]
    pub fn record(&self, value: u64) {
        if !crate::metrics_enabled() {
            return;
        }
        self.buckets[Self::bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Record a duration in nanoseconds.
    #[inline]
    pub fn record_duration(&self, duration: Duration) {
        self.record(duration.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Start a timer that records into this histogram when dropped.  While
    /// metrics are disabled the clock is never read.
    pub fn start_timer(&'static self) -> Timer {
        Timer {
            histogram: self,
            start: crate::metrics_enabled().then(Instant::now),
        }
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// The value at quantile `q` in `[0, 1]`, reported as the upper bound of
    /// the bucket containing that rank (a conservative, ≤2x estimate).
    /// Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * count as f64).ceil() as u64).max(1);
        let mut cumulative = 0u64;
        for (index, bucket) in self.buckets.iter().enumerate() {
            cumulative += bucket.load(Ordering::Relaxed);
            if cumulative >= rank {
                return Self::bucket_upper_bound(index).min(self.max());
            }
        }
        self.max()
    }

    /// Per-bucket counts (index, count) for non-empty buckets.
    pub fn nonzero_buckets(&self) -> Vec<(usize, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter_map(|(index, bucket)| {
                let n = bucket.load(Ordering::Relaxed);
                (n > 0).then_some((index, n))
            })
            .collect()
    }

    fn reset(&self) {
        for bucket in &self.buckets {
            bucket.store(0, Ordering::Relaxed);
        }
        self.sum.store(0, Ordering::Relaxed);
        self.count.store(0, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }

    fn summary(&self, name: &str) -> HistogramSummary {
        HistogramSummary {
            name: name.to_string(),
            count: self.count(),
            sum: self.sum(),
            p50: self.quantile(0.50),
            p90: self.quantile(0.90),
            p99: self.quantile(0.99),
            max: self.max(),
        }
    }
}

/// RAII timer: records the elapsed nanoseconds into its histogram on drop.
#[derive(Debug)]
pub struct Timer {
    histogram: &'static Histogram,
    start: Option<Instant>,
}

impl Timer {
    /// Stop without recording (e.g. on an error path that should not skew a
    /// latency distribution).
    pub fn cancel(mut self) {
        self.start = None;
    }
}

impl Drop for Timer {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            self.histogram.record_duration(start.elapsed());
        }
    }
}

/// A quantile digest of one histogram — the shape embedded in
/// `DeploymentReport::telemetry` and the bench sidecar files.  All values
/// are in the histogram's native unit (nanoseconds for latencies).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSummary {
    pub name: String,
    pub count: u64,
    pub sum: u64,
    pub p50: u64,
    pub p90: u64,
    pub p99: u64,
    pub max: u64,
}

impl HistogramSummary {
    /// Mean observation, zero when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// The name-to-metric maps.  Names registered once stay registered; the
/// handles are leaked (one allocation per distinct name over the process
/// lifetime) so they can be shared as `&'static` without reference counting
/// on the hot path.
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, &'static Counter>>,
    gauges: Mutex<BTreeMap<String, &'static Gauge>>,
    histograms: Mutex<BTreeMap<String, &'static Histogram>>,
}

fn intern<T: Default + 'static>(
    map: &Mutex<BTreeMap<String, &'static T>>,
    name: &str,
) -> &'static T {
    let mut map = map.lock().unwrap_or_else(PoisonError::into_inner);
    if let Some(existing) = map.get(name) {
        return existing;
    }
    let leaked: &'static T = Box::leak(Box::default());
    map.insert(name.to_string(), leaked);
    leaked
}

impl Registry {
    /// Get or create the counter called `name`.
    pub fn counter(&self, name: &str) -> &'static Counter {
        intern(&self.counters, name)
    }

    /// Get or create the gauge called `name`.
    pub fn gauge(&self, name: &str) -> &'static Gauge {
        intern(&self.gauges, name)
    }

    /// Get or create the histogram called `name`.
    pub fn histogram(&self, name: &str) -> &'static Histogram {
        intern(&self.histograms, name)
    }

    /// Zero every registered metric (names stay registered).  For benches
    /// and tests that need a clean slate inside one process.
    pub fn reset(&self) {
        for counter in self
            .counters
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .values()
        {
            counter.reset();
        }
        for gauge in self
            .gauges
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .values()
        {
            gauge.set(0);
        }
        for histogram in self
            .histograms
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .values()
        {
            histogram.reset();
        }
    }

    /// Quantile summaries of every histogram that has recorded at least one
    /// observation, sorted by name.
    pub fn histogram_summaries(&self) -> Vec<HistogramSummary> {
        self.histograms
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .filter(|(_, histogram)| histogram.count() > 0)
            .map(|(name, histogram)| histogram.summary(name))
            .collect()
    }

    /// Render every metric in Prometheus text exposition format.  Labelled
    /// names (`name{label="x"}`) share one `# TYPE` line per base name.
    pub fn prometheus_text(&self) -> String {
        let mut out = String::new();
        let mut last_type_line = String::new();
        let mut type_line = |out: &mut String, name: &str, kind: &str| {
            let base = name.split('{').next().unwrap_or(name);
            let line = format!("# TYPE {base} {kind}\n");
            if line != last_type_line {
                out.push_str(&line);
                last_type_line = line;
            }
        };
        for (name, counter) in self
            .counters
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
        {
            type_line(&mut out, name, "counter");
            out.push_str(&format!("{name} {}\n", counter.get()));
        }
        for (name, gauge) in self
            .gauges
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
        {
            type_line(&mut out, name, "gauge");
            out.push_str(&format!("{name} {}\n", gauge.get()));
        }
        for (name, histogram) in self
            .histograms
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
        {
            type_line(&mut out, name, "histogram");
            let mut cumulative = 0u64;
            for (index, count) in histogram.nonzero_buckets() {
                cumulative += count;
                out.push_str(&format!(
                    "{name}_bucket{{le=\"{}\"}} {cumulative}\n",
                    Histogram::bucket_upper_bound(index)
                ));
            }
            out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {cumulative}\n"));
            out.push_str(&format!("{name}_sum {}\n", histogram.sum()));
            out.push_str(&format!("{name}_count {}\n", histogram.count()));
        }
        out
    }
}

/// The process-wide registry.
pub fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::default)
}

/// [`Registry::histogram_summaries`] on the global registry.
pub fn histogram_summaries() -> Vec<HistogramSummary> {
    registry().histogram_summaries()
}

/// [`Registry::prometheus_text`] on the global registry.
pub fn prometheus_text() -> String {
    registry().prometheus_text()
}

/// A `&'static Counter` from the global registry, with the lookup cached at
/// the call site.
#[macro_export]
macro_rules! counter {
    ($name:expr) => {{
        static HANDLE: ::std::sync::OnceLock<&'static $crate::Counter> =
            ::std::sync::OnceLock::new();
        *HANDLE.get_or_init(|| $crate::registry().counter($name))
    }};
}

/// A `&'static Gauge` from the global registry, cached at the call site.
#[macro_export]
macro_rules! gauge {
    ($name:expr) => {{
        static HANDLE: ::std::sync::OnceLock<&'static $crate::Gauge> = ::std::sync::OnceLock::new();
        *HANDLE.get_or_init(|| $crate::registry().gauge($name))
    }};
}

/// A `&'static Histogram` from the global registry, cached at the call site.
#[macro_export]
macro_rules! histogram {
    ($name:expr) => {{
        static HANDLE: ::std::sync::OnceLock<&'static $crate::Histogram> =
            ::std::sync::OnceLock::new();
        *HANDLE.get_or_init(|| $crate::registry().histogram($name))
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_powers_of_two() {
        // Bucket 0 is exactly zero.
        assert_eq!(Histogram::bucket_index(0), 0);
        // Bucket i holds [2^(i-1), 2^i).
        for i in 1..64usize {
            let low = 1u64 << (i - 1);
            let high = (1u64 << i) - 1;
            assert_eq!(Histogram::bucket_index(low), i, "lower edge of bucket {i}");
            assert_eq!(Histogram::bucket_index(high), i, "upper edge of bucket {i}");
            assert_eq!(Histogram::bucket_upper_bound(i), high);
        }
        assert_eq!(Histogram::bucket_index(u64::MAX), 64);
        assert_eq!(Histogram::bucket_upper_bound(64), u64::MAX);
        assert_eq!(Histogram::bucket_upper_bound(0), 0);
        // Adjacent boundary values land in adjacent buckets.
        assert_eq!(Histogram::bucket_index(1023), 10);
        assert_eq!(Histogram::bucket_index(1024), 11);
    }

    #[test]
    fn p99_readout_walks_cumulative_buckets() {
        let _guard = crate::test_flag_lock();
        let histogram = Histogram::new();
        // 99 fast observations (~1µs) and one slow outlier (~1ms).
        for _ in 0..99 {
            histogram.record(1_000);
        }
        histogram.record(1_000_000);
        assert_eq!(histogram.count(), 100);
        // p50 and p90 sit in the 1µs bucket: [512, 1024) → upper bound 1023.
        assert_eq!(histogram.quantile(0.50), 1_023);
        assert_eq!(histogram.quantile(0.90), 1_023);
        // p99 is the 99th of 100 ranks — still the fast bucket…
        assert_eq!(histogram.quantile(0.99), 1_023);
        // …and the max / p100 is the outlier, capped at the observed max.
        assert_eq!(histogram.quantile(1.0), 1_000_000);
        assert_eq!(histogram.max(), 1_000_000);
        // With 2% outliers, p99 crosses into the slow bucket.
        let skewed = Histogram::new();
        for _ in 0..98 {
            skewed.record(1_000);
        }
        skewed.record(1_000_000);
        skewed.record(1_000_000);
        assert_eq!(skewed.quantile(0.99), 1_000_000);
    }

    #[test]
    fn empty_histogram_reads_zero() {
        let histogram = Histogram::new();
        assert_eq!(histogram.quantile(0.99), 0);
        assert_eq!(histogram.count(), 0);
        assert_eq!(histogram.max(), 0);
    }

    #[test]
    fn disabled_metrics_skip_histograms_but_not_counters() {
        let _guard = crate::test_flag_lock();
        let histogram = Histogram::new();
        let counter = Counter::new();
        crate::set_metrics_enabled(false);
        histogram.record(42);
        counter.inc();
        crate::set_metrics_enabled(true);
        assert_eq!(histogram.count(), 0, "gated while disabled");
        assert_eq!(counter.get(), 1, "counters always count");
        histogram.record(42);
        assert_eq!(histogram.count(), 1);
    }

    #[test]
    fn registry_interns_by_name() {
        let registry = Registry::default();
        let a = registry.counter("test_total");
        let b = registry.counter("test_total");
        assert!(std::ptr::eq(a, b));
        a.add(3);
        assert_eq!(b.get(), 3);
        let g = registry.gauge("test_depth");
        g.set(7);
        g.add(-2);
        assert_eq!(registry.gauge("test_depth").get(), 5);
    }

    #[test]
    fn registry_reset_zeroes_everything() {
        let _guard = crate::test_flag_lock();
        let registry = Registry::default();
        registry.counter("c").add(9);
        registry.gauge("g").set(-4);
        registry.histogram("h").record(100);
        registry.reset();
        assert_eq!(registry.counter("c").get(), 0);
        assert_eq!(registry.gauge("g").get(), 0);
        assert_eq!(registry.histogram("h").count(), 0);
    }

    #[test]
    fn prometheus_text_renders_all_kinds() {
        let _guard = crate::test_flag_lock();
        let registry = Registry::default();
        registry.counter("requests_total").add(5);
        registry.gauge("queue_depth").set(3);
        let h = registry.histogram("latency_ns");
        h.record(700);
        h.record(800);
        h.record(100_000);
        let text = registry.prometheus_text();
        assert!(text.contains("# TYPE requests_total counter"));
        assert!(text.contains("requests_total 5"));
        assert!(text.contains("# TYPE queue_depth gauge"));
        assert!(text.contains("queue_depth 3"));
        assert!(text.contains("# TYPE latency_ns histogram"));
        assert!(text.contains("latency_ns_bucket{le=\"1023\"} 2"));
        assert!(text.contains("latency_ns_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("latency_ns_sum 101500"));
        assert!(text.contains("latency_ns_count 3"));
    }

    #[test]
    fn labelled_gauges_share_one_type_line() {
        let registry = Registry::default();
        registry.gauge("node_bytes{node=\"0\"}").set(10);
        registry.gauge("node_bytes{node=\"1\"}").set(20);
        let text = registry.prometheus_text();
        assert_eq!(text.matches("# TYPE node_bytes gauge").count(), 1);
        assert!(text.contains("node_bytes{node=\"0\"} 10"));
        assert!(text.contains("node_bytes{node=\"1\"} 20"));
    }

    #[test]
    fn summaries_skip_empty_histograms() {
        let _guard = crate::test_flag_lock();
        let registry = Registry::default();
        registry.histogram("never_recorded");
        let h = registry.histogram("recorded");
        h.record(10);
        let summaries = registry.histogram_summaries();
        assert_eq!(summaries.len(), 1);
        assert_eq!(summaries[0].name, "recorded");
        assert_eq!(summaries[0].count, 1);
        assert!((summaries[0].mean() - 10.0).abs() < f64::EPSILON);
    }

    #[test]
    fn timer_records_elapsed_nanoseconds() {
        let _guard = crate::test_flag_lock();
        let registry = Registry::default();
        let h: &'static Histogram = registry.histogram("timed_ns");
        {
            let _timer = h.start_timer();
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(h.count(), 1);
        assert!(h.sum() >= 1_000_000, "at least the slept millisecond");
        let timer = h.start_timer();
        timer.cancel();
        assert_eq!(h.count(), 1, "cancelled timers record nothing");
    }
}
