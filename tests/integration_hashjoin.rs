//! End-to-end integration test of the secure parallel hash join (paper §7.2).

use secureblox::apps::hashjoin::{self, HashJoinConfig};
use secureblox::policy::SecurityConfig;
use secureblox::{AuthScheme, EncScheme};

fn config(nodes: usize, auth: AuthScheme, enc: EncScheme) -> HashJoinConfig {
    HashJoinConfig {
        num_nodes: nodes,
        table_a_rows: 120,
        table_b_rows: 100,
        distinct_join_values: 18,
        security: SecurityConfig::new(auth, enc),
        seed: 11,
        ..HashJoinConfig::default()
    }
}

#[test]
fn join_is_correct_under_noauth_and_rsa_aes() {
    let plain = hashjoin::run(&config(4, AuthScheme::NoAuth, EncScheme::None)).unwrap();
    assert_eq!(plain.results_at_initiator, plain.expected_results);
    assert!(plain.expected_results > 0);

    let secured = hashjoin::run(&config(4, AuthScheme::Rsa, EncScheme::Aes128)).unwrap();
    assert_eq!(secured.results_at_initiator, secured.expected_results);
    assert_eq!(secured.expected_results, plain.expected_results);
    assert_eq!(secured.report.rejected_batches, 0);
}

#[test]
fn more_parallelism_reduces_per_node_overhead() {
    // Figure 12: per-node overhead falls as the work spreads over more nodes.
    let small = hashjoin::run(&config(2, AuthScheme::NoAuth, EncScheme::None)).unwrap();
    let large = hashjoin::run(&config(8, AuthScheme::NoAuth, EncScheme::None)).unwrap();
    assert!(
        large.report.per_node_kb < small.report.per_node_kb,
        "small {} vs large {}",
        small.report.per_node_kb,
        large.report.per_node_kb
    );
}

#[test]
fn security_increases_overhead_but_not_results() {
    let plain = hashjoin::run(&config(4, AuthScheme::NoAuth, EncScheme::None)).unwrap();
    let secured = hashjoin::run(&config(4, AuthScheme::Rsa, EncScheme::Aes128)).unwrap();
    assert!(secured.report.per_node_kb > plain.report.per_node_kb);
    assert_eq!(secured.results_at_initiator, plain.results_at_initiator);
}

#[test]
fn initiator_sees_results_arrive_over_time() {
    let outcome = hashjoin::run(&config(4, AuthScheme::NoAuth, EncScheme::None)).unwrap();
    assert!(!outcome.initiator_completions.is_empty());
    let mut sorted = outcome.initiator_completions.clone();
    sorted.sort();
    assert_eq!(
        sorted, outcome.initiator_completions,
        "completions are recorded in order"
    );
}
