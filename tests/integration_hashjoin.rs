//! End-to-end integration test of the secure parallel hash join (paper §7.2).

use secureblox::apps::hashjoin::{self, HashJoinConfig};
use secureblox::policy::SecurityConfig;
use secureblox::{AuthScheme, EncScheme};

fn config(nodes: usize, auth: AuthScheme, enc: EncScheme) -> HashJoinConfig {
    HashJoinConfig {
        num_nodes: nodes,
        table_a_rows: 120,
        table_b_rows: 100,
        distinct_join_values: 18,
        security: SecurityConfig::new(auth, enc),
        seed: 11,
        ..HashJoinConfig::default()
    }
}

#[test]
fn join_is_correct_under_noauth_and_rsa_aes() {
    let plain = hashjoin::run(&config(4, AuthScheme::NoAuth, EncScheme::None)).unwrap();
    assert_eq!(plain.results_at_initiator, plain.expected_results);
    assert!(plain.expected_results > 0);

    let secured = hashjoin::run(&config(4, AuthScheme::Rsa, EncScheme::Aes128)).unwrap();
    assert_eq!(secured.results_at_initiator, secured.expected_results);
    assert_eq!(secured.expected_results, plain.expected_results);
    assert_eq!(secured.report.rejected_batches, 0);
}

#[test]
fn more_parallelism_reduces_per_node_overhead() {
    // Figure 12: per-node overhead falls as the work spreads over more nodes.
    let small = hashjoin::run(&config(2, AuthScheme::NoAuth, EncScheme::None)).unwrap();
    let large = hashjoin::run(&config(8, AuthScheme::NoAuth, EncScheme::None)).unwrap();
    assert!(
        large.report.per_node_kb < small.report.per_node_kb,
        "small {} vs large {}",
        small.report.per_node_kb,
        large.report.per_node_kb
    );
}

#[test]
fn security_increases_overhead_but_not_results() {
    let plain = hashjoin::run(&config(4, AuthScheme::NoAuth, EncScheme::None)).unwrap();
    let secured = hashjoin::run(&config(4, AuthScheme::Rsa, EncScheme::Aes128)).unwrap();
    assert!(secured.report.per_node_kb > plain.report.per_node_kb);
    assert_eq!(secured.results_at_initiator, plain.results_at_initiator);
}

#[test]
fn shard_layer_join_matches_the_hand_routed_reference() {
    // The original app routes by hand in DatalogLB (rehash rules over
    // prin_minhash/prin_maxhash); the sharded variant writes the join
    // partition-blind and lets the exchange planner generate the rehash.
    // Same tables, same results — tuple for tuple at the initiator.
    let reference = hashjoin::run(&config(4, AuthScheme::NoAuth, EncScheme::None)).unwrap();
    let sharded = hashjoin::run_sharded(&config(4, AuthScheme::NoAuth, EncScheme::None)).unwrap();
    assert!(sharded.expected_results > 0);
    assert_eq!(sharded.expected_results, reference.expected_results);
    assert_eq!(sharded.results_at_initiator, sharded.expected_results);
    assert_eq!(sharded.results_at_initiator, reference.results_at_initiator);
    let shard_view = sharded
        .report
        .shard
        .expect("sharded run reports the shard plane");
    assert_eq!(shard_view.partitions, 4);
    assert_eq!(
        shard_view.shuffle_literals, 2,
        "the join should be planned as a both-sides shuffle on the join attribute"
    );
    assert!(shard_view.exchange_bytes > 0, "the shuffle must ship bytes");
    assert!(reference.report.shard.is_none());
}

#[test]
fn shard_layer_join_is_identical_under_signatures() {
    let reference = hashjoin::run(&config(3, AuthScheme::Rsa, EncScheme::Aes128)).unwrap();
    let sharded = hashjoin::run_sharded(&config(3, AuthScheme::Rsa, EncScheme::Aes128)).unwrap();
    assert_eq!(sharded.results_at_initiator, sharded.expected_results);
    assert_eq!(sharded.results_at_initiator, reference.results_at_initiator);
    assert_eq!(sharded.report.rejected_batches, 0);
}

#[test]
fn initiator_sees_results_arrive_over_time() {
    let outcome = hashjoin::run(&config(4, AuthScheme::NoAuth, EncScheme::None)).unwrap();
    assert!(!outcome.initiator_completions.is_empty());
    let mut sorted = outcome.initiator_completions.clone();
    sorted.sort();
    assert_eq!(
        sorted, outcome.initiator_completions,
        "completions are recorded in order"
    );
}
