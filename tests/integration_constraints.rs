//! Integration tests of the transactional constraint semantics that the
//! security policies rely on (paper §5.2): violating batches roll back in
//! full, across the whole compiled policy + application stack.

use secureblox::policy::{compile_secured_program, SecurityConfig};
use secureblox::runtime::register_crypto_udfs;
use secureblox::{AuthScheme, DatalogError, EncScheme, Value, Workspace};

const APP: &str = r#"
    link(N1, N2) -> node(N1), node(N2).
    reachable(X, Y) -> node(X), node(Y).
    exportable(`reachable).
    reachable(X, Y) <- link(X, Y).
    reachable(X, Y) <- link(X, Z), reachable(Z, Y).
"#;

fn secured_workspace(auth: AuthScheme) -> Workspace {
    let compiled =
        compile_secured_program(APP, &SecurityConfig::new(auth, EncScheme::None), &[]).unwrap();
    let mut ws = Workspace::new();
    register_crypto_udfs(&mut ws);
    ws.install_program(&compiled.program).unwrap();
    ws.set_singleton("self", Value::str("n0")).unwrap();
    for p in ["n0", "n1"] {
        ws.assert_fact("principal", vec![Value::str(p)]).unwrap();
        ws.assert_fact("node", vec![Value::str(p)]).unwrap();
        ws.assert_fact("node", vec![Value::str("n9")]).unwrap();
        ws.assert_fact("trustworthy", vec![Value::str(p)]).unwrap();
    }
    ws
}

#[test]
fn says_from_unknown_principal_rolls_back_the_whole_batch() {
    let mut ws = secured_workspace(AuthScheme::NoAuth);
    // A batch mixing a good link and a says tuple from an unknown principal:
    // the paper's ACID semantics discard both.
    let before = ws.total_facts();
    let err = ws
        .transaction(vec![
            ("link".into(), vec![Value::str("n0"), Value::str("n1")]),
            (
                "says$reachable".into(),
                vec![
                    Value::str("mallory"),
                    Value::str("n0"),
                    Value::str("n1"),
                    Value::str("n9"),
                ],
            ),
        ])
        .unwrap_err();
    assert!(matches!(err, DatalogError::ConstraintViolation(_)));
    assert_eq!(ws.total_facts(), before);
    assert_eq!(ws.count("reachable"), 0);

    // The same link alone commits fine.
    ws.transaction(vec![(
        "link".into(),
        vec![Value::str("n0"), Value::str("n1")],
    )])
    .unwrap();
    assert_eq!(ws.count("reachable"), 1);
}

#[test]
fn hmac_policy_requires_a_matching_signature_inside_the_transaction() {
    let mut ws = secured_workspace(AuthScheme::HmacSha1);
    let secret = b"pairwise secret n0<->n1".to_vec();
    ws.assert_fact(
        "secret",
        vec![Value::str("n1"), Value::bytes(secret.clone())],
    )
    .unwrap();

    let says_tuple = vec![
        Value::str("n1"),
        Value::str("n0"),
        Value::str("n1"),
        Value::str("n9"),
    ];
    // Without any sig$reachable fact the verification constraint fails.
    let err = ws
        .transaction(vec![("says$reachable".into(), says_tuple.clone())])
        .unwrap_err();
    assert!(matches!(err, DatalogError::ConstraintViolation(_)));

    // With the correct HMAC tag over the serialized payload columns (what the
    // generated `hmac_sign(K, V*, S)` rule signs) the batch commits and the
    // import rule fires.
    let message = secureblox::runtime::serialize_tuple(&says_tuple[2..]);
    let tag = secureblox_crypto::hmac_sha1(&secret, &message).to_vec();
    let mut sig_tuple = says_tuple.clone();
    sig_tuple.push(Value::bytes(tag));
    ws.transaction(vec![
        ("says$reachable".into(), says_tuple),
        ("sig$reachable".into(), sig_tuple),
    ])
    .unwrap();
    assert!(ws.contains_fact("reachable", &[Value::str("n1"), Value::str("n9")]));
}

#[test]
fn incremental_maintenance_retracts_derived_routes() {
    let mut ws = secured_workspace(AuthScheme::NoAuth);
    ws.transaction(vec![
        ("link".into(), vec![Value::str("n0"), Value::str("n1")]),
        ("link".into(), vec![Value::str("n1"), Value::str("n9")]),
    ])
    .unwrap();
    assert!(ws.contains_fact("reachable", &[Value::str("n0"), Value::str("n9")]));
    ws.retract(vec![(
        "link".into(),
        vec![Value::str("n1"), Value::str("n9")],
    )])
    .unwrap();
    assert!(!ws.contains_fact("reachable", &[Value::str("n0"), Value::str("n9")]));
    assert!(ws.contains_fact("reachable", &[Value::str("n0"), Value::str("n1")]));
}
