//! Telemetry is effect-free: running any scenario with the metric registry
//! and span tracing enabled must produce exactly the same relations, the
//! same constraint verdicts, and the same store Merkle roots as running it
//! with telemetry disabled.  Instrumentation observes the computation; it
//! must never participate in it.
//!
//! The global enabled/disabled flags are process-wide, so every test in this
//! binary serializes on one lock and restores the default state (metrics on,
//! tracing off) before releasing it.

use proptest::prelude::*;
use secureblox::apps::pathvector;
use secureblox::policy::SecurityConfig;
use secureblox::runtime::{Deployment, DeploymentConfig, NodeSpec};
use secureblox::{AuthScheme, DurabilityConfig, EncScheme, Value};
use secureblox_datalog::codec::serialize_tuple;
use secureblox_datalog::value::Tuple;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

static FLAG_LOCK: Mutex<()> = Mutex::new(());

/// Run `f` with telemetry fully on (metrics + ring tracing) or fully off,
/// then restore the shipped defaults.  The caller must hold [`FLAG_LOCK`].
fn with_telemetry<T>(enabled: bool, f: impl FnOnce() -> T) -> T {
    secureblox_telemetry::set_metrics_enabled(enabled);
    if enabled {
        secureblox_telemetry::enable_tracing_to_ring();
    } else {
        secureblox_telemetry::disable_tracing();
    }
    let out = f();
    secureblox_telemetry::set_metrics_enabled(true);
    secureblox_telemetry::disable_tracing();
    let _ = secureblox_telemetry::take_spans();
    out
}

// ---------------------------------------------------------------------------
// Path-vector protocol on random topologies
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// On any random topology the protocol *outcome* — routes found, join
    /// entries, policy verdicts — is identical whether telemetry observes the
    /// run or not.  Scheduling counters (total transactions / messages) are
    /// deliberately not compared: virtual time advances by *measured*
    /// wall-clock compute, so duplicate-resend counts vary between any two
    /// runs of the same scenario, telemetry or not.
    #[test]
    fn pathvector_outcome_is_independent_of_telemetry(num_nodes in 4usize..7,
                                                      seed in 0u64..1000) {
        let _lock = FLAG_LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let config = pathvector::PathVectorConfig {
            num_nodes,
            seed,
            security: SecurityConfig::new(AuthScheme::HmacSha1, EncScheme::None),
            ..Default::default()
        };
        let observed = with_telemetry(true, || pathvector::run(&config).unwrap());
        let unobserved = with_telemetry(false, || pathvector::run(&config).unwrap());
        prop_assert_eq!(observed.nodes_with_route_to_zero, unobserved.nodes_with_route_to_zero);
        prop_assert_eq!(observed.best_cost_entries, unobserved.best_cost_entries);
        prop_assert_eq!(observed.report.rejected_batches, unobserved.report.rejected_batches);
    }
}

// ---------------------------------------------------------------------------
// Durable deployment: relations and Merkle roots
// ---------------------------------------------------------------------------

const REACH_APP: &str = r#"
    link(N1, N2) -> node(N1), node(N2).
    remote_link(N1, N2) -> node(N1), node(N2).
    reach(N1, N2) -> node(N1), node(N2).
    exportable(`remote_link).

    says[`remote_link](self[], U, X, Y) <- link(X, Y), principal(U), U != self[].
    reach(X, Y) <- link(X, Y).
    reach(X, Y) <- remote_link(X, Y).
    reach(X, Z) <- reach(X, Y), reach(Y, Z).
"#;

fn line_specs() -> Vec<NodeSpec> {
    vec![
        NodeSpec {
            principal: "n0".into(),
            base_facts: vec![("link".into(), vec![Value::str("n0"), Value::str("n1")])],
        },
        NodeSpec {
            principal: "n1".into(),
            base_facts: vec![("link".into(), vec![Value::str("n1"), Value::str("n2")])],
        },
        NodeSpec {
            principal: "n2".into(),
            base_facts: vec![],
        },
    ]
}

fn durable_config(dir: &Path) -> DeploymentConfig {
    DeploymentConfig {
        security: SecurityConfig::new(AuthScheme::HmacSha1, EncScheme::None),
        durability: Some(DurabilityConfig::new(dir)),
        ..DeploymentConfig::default()
    }
}

fn fresh_dir(label: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sbx-telem-{label}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn sorted(mut tuples: Vec<Tuple>) -> Vec<Tuple> {
    tuples.sort_by_key(|t| serialize_tuple(t));
    tuples
}

fn all_queries(deployment: &Deployment) -> Vec<(String, String, Vec<Tuple>)> {
    let mut out = Vec::new();
    for principal in ["n0", "n1", "n2"] {
        for pred in ["link", "remote_link", "reach", "says$remote_link"] {
            out.push((
                principal.to_string(),
                pred.to_string(),
                sorted(deployment.query(principal, pred)),
            ));
        }
    }
    out
}

/// One full durable scenario: build, run to fixpoint, retract a link (so the
/// DRed/WAL path executes), return queries + verdicts + Merkle roots.
#[allow(clippy::type_complexity)]
fn run_durable_scenario(
    dir: &Path,
) -> (
    Vec<(String, String, Vec<Tuple>)>,
    (usize, usize, usize),
    Vec<(String, String)>,
) {
    let mut deployment = Deployment::build(REACH_APP, &line_specs(), durable_config(dir)).unwrap();
    let report = deployment.run().unwrap();
    deployment
        .retract(
            "n1",
            vec![("link".into(), vec![Value::str("n1"), Value::str("n2")])],
        )
        .unwrap();
    let roots = deployment.edb_roots().unwrap();
    (
        all_queries(&deployment),
        (
            report.rejected_batches,
            report.conflicting_batches,
            report.retractions_applied,
        ),
        roots,
    )
}

#[test]
fn durable_run_is_bit_identical_with_and_without_telemetry() {
    let _lock = FLAG_LOCK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let on_dir = fresh_dir("on");
    let off_dir = fresh_dir("off");
    let observed = with_telemetry(true, || run_durable_scenario(&on_dir));
    let unobserved = with_telemetry(false, || run_durable_scenario(&off_dir));
    assert_eq!(observed.0, unobserved.0, "relations diverged");
    assert_eq!(observed.1, unobserved.1, "constraint verdicts diverged");
    assert_eq!(observed.2, unobserved.2, "store Merkle roots diverged");
    let _ = std::fs::remove_dir_all(&on_dir);
    let _ = std::fs::remove_dir_all(&off_dir);
}

/// The deployment report's telemetry section exposes latency distributions
/// for the three acceptance histograms: fixpoint evaluation, WAL appends,
/// and update-stream application.
#[test]
fn report_telemetry_exposes_fixpoint_wal_and_update_apply() {
    let _lock = FLAG_LOCK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    with_telemetry(true, || {
        let dir = fresh_dir("report");
        let mut deployment =
            Deployment::build(REACH_APP, &line_specs(), durable_config(&dir)).unwrap();
        let report = deployment.run().unwrap();
        for name in [
            "datalog_fixpoint_ns",
            "store_wal_append_ns",
            "engine_update_apply_ns",
        ] {
            let summary = report
                .telemetry
                .iter()
                .find(|s| s.name == name)
                .unwrap_or_else(|| panic!("{name} missing from report telemetry"));
            assert!(summary.count > 0, "{name} recorded nothing");
            assert!(summary.p50 <= summary.p99, "{name} quantiles out of order");
            assert!(summary.p99 <= summary.max, "{name} p99 above max");
        }
        let _ = std::fs::remove_dir_all(&dir);
    });
}

/// The observed run really was observed: with ring tracing on, engine spans
/// land in the buffer; with everything off, nothing is recorded — so the
/// equality above compares an instrumented run against a bare one.
#[test]
fn enabled_run_actually_records_telemetry() {
    let _lock = FLAG_LOCK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let config = pathvector::PathVectorConfig {
        num_nodes: 4,
        seed: 7,
        security: SecurityConfig::new(AuthScheme::HmacSha1, EncScheme::None),
        ..Default::default()
    };
    let spans = with_telemetry(true, || {
        let _ = secureblox_telemetry::take_spans();
        pathvector::run(&config).unwrap();
        secureblox_telemetry::take_spans()
    });
    assert!(
        spans
            .iter()
            .any(|s| s.target == "engine" && s.name == "update_apply"),
        "expected engine update_apply spans, got {} spans",
        spans.len()
    );
    let quiet = with_telemetry(false, || {
        pathvector::run(&config).unwrap();
        secureblox_telemetry::take_spans()
    });
    assert!(quiet.is_empty(), "disabled tracing must record nothing");
}
