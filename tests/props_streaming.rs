//! The streaming scheduler is semantics-free: batched, annihilated,
//! credit-backpressured delivery must produce exactly the same relations,
//! the same constraint verdicts, and the same store Merkle roots as the
//! per-envelope delivery path.  Batching changes *when* deltas travel and
//! how many envelopes carry them — never what the receivers end up knowing.
//!
//! Two comparison regimes, matching `props_telemetry.rs`:
//!
//! * the deterministic REACH app (no existentials, no FD races) is compared
//!   **bit-for-bit** — every relation, every verdict counter, every EDB
//!   Merkle root — across worker counts {1, 4} and a spread of
//!   batch/credit-window knobs including a credit window of 1 (maximum
//!   backpressure: every delta stalls until the previous one is acked);
//! * random path-vector topologies are compared at **outcome** level
//!   (routes found, bestcost entries, rejected batches): virtual time
//!   advances by measured wall-clock compute, so message/transaction counts
//!   legitimately differ between any two runs of the same scenario.
//!
//! The durable REACH scenario also exercises recovery: a streaming-mode WAL
//! (one record group per delta transaction, exactly as on the per-envelope
//! path) must replay to the same state the live deployment held.

use proptest::prelude::*;
use secureblox::apps::pathvector;
use secureblox::policy::SecurityConfig;
use secureblox::runtime::{Deployment, DeploymentConfig, NodeSpec, StreamingConfig};
use secureblox::{AuthScheme, DurabilityConfig, EncScheme, Value};
use secureblox_datalog::codec::serialize_tuple;
use secureblox_datalog::value::Tuple;
use std::path::{Path, PathBuf};

// ---------------------------------------------------------------------------
// Deterministic REACH app (same shape as props_telemetry.rs): bit-identical
// ---------------------------------------------------------------------------

const REACH_APP: &str = r#"
    link(N1, N2) -> node(N1), node(N2).
    remote_link(N1, N2) -> node(N1), node(N2).
    reach(N1, N2) -> node(N1), node(N2).
    exportable(`remote_link).

    says[`remote_link](self[], U, X, Y) <- link(X, Y), principal(U), U != self[].
    reach(X, Y) <- link(X, Y).
    reach(X, Y) <- remote_link(X, Y).
    reach(X, Z) <- reach(X, Y), reach(Y, Z).
"#;

fn line_specs() -> Vec<NodeSpec> {
    vec![
        NodeSpec {
            principal: "n0".into(),
            base_facts: vec![("link".into(), vec![Value::str("n0"), Value::str("n1")])],
        },
        NodeSpec {
            principal: "n1".into(),
            base_facts: vec![("link".into(), vec![Value::str("n1"), Value::str("n2")])],
        },
        NodeSpec {
            principal: "n2".into(),
            base_facts: vec![],
        },
    ]
}

fn durable_config(dir: &Path, streaming: StreamingConfig, parallelism: usize) -> DeploymentConfig {
    DeploymentConfig {
        security: SecurityConfig::new(AuthScheme::HmacSha1, EncScheme::None),
        durability: Some(DurabilityConfig::new(dir)),
        streaming,
        parallelism,
        ..DeploymentConfig::default()
    }
}

fn fresh_dir(label: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sbx-stream-{label}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn sorted(mut tuples: Vec<Tuple>) -> Vec<Tuple> {
    tuples.sort_by_key(|t| serialize_tuple(t));
    tuples
}

fn all_queries(deployment: &Deployment) -> Vec<(String, String, Vec<Tuple>)> {
    let mut out = Vec::new();
    for principal in ["n0", "n1", "n2"] {
        for pred in ["link", "remote_link", "reach", "says$remote_link"] {
            out.push((
                principal.to_string(),
                pred.to_string(),
                sorted(deployment.query(principal, pred)),
            ));
        }
    }
    out
}

type Snapshot = (
    Vec<(String, String, Vec<Tuple>)>,
    (usize, usize, usize),
    Vec<(String, String)>,
);

fn snapshot(deployment: &Deployment, verdicts: (usize, usize, usize)) -> Snapshot {
    (
        all_queries(deployment),
        verdicts,
        deployment.edb_roots().unwrap(),
    )
}

/// One full durable scenario: build, run to fixpoint, retract a link (so the
/// DRed/WAL retract path executes under batching), run to re-convergence.
fn run_durable_scenario(
    dir: &Path,
    streaming: StreamingConfig,
    parallelism: usize,
) -> (Snapshot, Deployment) {
    let mut deployment = Deployment::build(
        REACH_APP,
        &line_specs(),
        durable_config(dir, streaming, parallelism),
    )
    .unwrap();
    let first = deployment.run().unwrap();
    deployment
        .retract(
            "n1",
            vec![("link".into(), vec![Value::str("n1"), Value::str("n2")])],
        )
        .unwrap();
    let second = deployment.run().unwrap();
    let verdicts = (
        first.rejected_batches + second.rejected_batches,
        first.conflicting_batches + second.conflicting_batches,
        first.retractions_applied + second.retractions_applied,
    );
    let snap = snapshot(&deployment, verdicts);
    (snap, deployment)
}

/// Batched/backpressured delivery is bit-identical to per-envelope delivery
/// on a deterministic app: relations, verdicts, and Merkle roots all match,
/// for serial and parallel fixpoints and across batching knobs from
/// "degenerate" (batch of 1, credit window 1 — every delta individually
/// acked) to "greedy" (the shipped defaults).
#[test]
fn streaming_durable_run_matches_per_envelope_bit_for_bit() {
    for parallelism in [1usize, 4] {
        let base_dir = fresh_dir(&format!("base-w{parallelism}"));
        let (baseline, _) =
            run_durable_scenario(&base_dir, StreamingConfig::disabled(), parallelism);
        let _ = std::fs::remove_dir_all(&base_dir);

        for (batch_max, high_water) in [(1usize, 1usize), (4, 8), (64, 256)] {
            let dir = fresh_dir(&format!("s{batch_max}-{high_water}-w{parallelism}"));
            let (streamed, _) = run_durable_scenario(
                &dir,
                StreamingConfig::with_knobs(batch_max, high_water),
                parallelism,
            );
            let _ = std::fs::remove_dir_all(&dir);
            assert_eq!(
                streamed.0, baseline.0,
                "relations diverged (workers={parallelism}, batch={batch_max}, window={high_water})"
            );
            assert_eq!(
                streamed.1, baseline.1,
                "constraint verdicts diverged (workers={parallelism}, batch={batch_max}, window={high_water})"
            );
            assert_eq!(
                streamed.2, baseline.2,
                "store Merkle roots diverged (workers={parallelism}, batch={batch_max}, window={high_water})"
            );
        }
    }
}

/// A streaming-mode WAL replays faithfully: recovery re-applies the logged
/// record groups as the original per-delta transactions, landing on the same
/// relations and Merkle roots the live deployment held.
#[test]
fn recovery_replays_streaming_batch_wal_records_in_order() {
    let streaming = StreamingConfig::with_knobs(8, 32);
    let dir = fresh_dir("recover");
    let (live, deployment) = run_durable_scenario(&dir, streaming.clone(), 1);
    drop(deployment);

    let recovered = Deployment::recover(
        &dir,
        REACH_APP,
        &line_specs(),
        durable_config(&dir, streaming, 1),
    )
    .unwrap();
    assert_eq!(
        all_queries(&recovered),
        live.0,
        "recovered relations diverged from the live streaming deployment"
    );
    assert_eq!(
        recovered.edb_roots().unwrap(),
        live.2,
        "recovered Merkle roots diverged from the live streaming deployment"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// Order-sensitive acceptance inside one coalesced envelope
// ---------------------------------------------------------------------------

/// An app whose import acceptance is ORDER-SENSITIVE: an imported `edge`
/// only satisfies its constraint once both endpoint `vertex` facts are
/// known, and the export scan (sorted by predicate name) ships `says$edge`
/// *before* `says$vertex` in the same flush.  The per-envelope path rejects
/// the edge delta permanently — its transaction runs before the vertices
/// arrive, and the sender's `sent` cursor never re-ships it.
const ORDER_APP: &str = r#"
    vertex(N) -> node(N).
    edge(N1, N2) -> node(N1), node(N2).
    edge(N1, N2) -> vertex(N1), vertex(N2).
    local_vertex(N) -> node(N).
    local_edge(N1, N2) -> node(N1), node(N2).
    exportable(`edge).
    exportable(`vertex).

    vertex(N) <- local_vertex(N).
    edge(X, Y) <- local_edge(X, Y).
    says[`edge](self[], U, X, Y) <- local_edge(X, Y), principal(U), U != self[].
    says[`vertex](self[], U, N) <- local_vertex(N), principal(U), U != self[].
"#;

fn run_order_scenario(streaming: StreamingConfig) -> (Vec<Tuple>, Vec<Tuple>, usize) {
    let specs = vec![
        NodeSpec {
            principal: "n0".into(),
            base_facts: vec![
                ("local_vertex".into(), vec![Value::str("n0")]),
                ("local_vertex".into(), vec![Value::str("n1")]),
                (
                    "local_edge".into(),
                    vec![Value::str("n0"), Value::str("n1")],
                ),
            ],
        },
        NodeSpec {
            principal: "n1".into(),
            base_facts: vec![],
        },
    ];
    let config = DeploymentConfig {
        security: SecurityConfig::new(AuthScheme::HmacSha1, EncScheme::None),
        streaming,
        ..DeploymentConfig::default()
    };
    let mut deployment = Deployment::build(ORDER_APP, &specs, config).unwrap();
    let report = deployment.run().unwrap();
    (
        sorted(deployment.query("n1", "edge")),
        sorted(deployment.query("n1", "vertex")),
        report.rejected_batches,
    )
}

/// The regression locked in by the review: a coalesced envelope carrying
/// [`says$edge(a,b)`, `says$vertex(a)`, `says$vertex(b)`] must NOT accept
/// the edge just because the vertices ride in the same batch.  Per-delta
/// verdicts are order-sensitive, and streaming must reproduce the
/// per-envelope path's rejection exactly — a combined whole-batch
/// transaction would commit and silently widen policy acceptance.
#[test]
fn coalesced_envelope_keeps_per_delta_rejection_semantics() {
    let per_envelope = run_order_scenario(StreamingConfig::disabled());
    // The edge is rejected (its endpoints are unknown when it applies) and
    // never re-shipped; the vertices land.
    assert_eq!(per_envelope.0, Vec::<Tuple>::new());
    assert_eq!(
        per_envelope.1,
        vec![vec![Value::str("n0")], vec![Value::str("n1")]]
    );
    assert!(per_envelope.2 >= 1, "edge delta must be rejected");

    for (batch_max, high_water) in [(4usize, 16usize), (64, 256)] {
        let streamed = run_order_scenario(StreamingConfig::with_knobs(batch_max, high_water));
        assert_eq!(
            streamed, per_envelope,
            "streaming (batch={batch_max}, window={high_water}) diverged from per-envelope"
        );
    }
}

// ---------------------------------------------------------------------------
// Path-vector protocol on random topologies: outcome-identical
// ---------------------------------------------------------------------------

/// `pathvector::run` with an explicit streaming config (the app's own entry
/// point builds its `DeploymentConfig` internally).
fn run_pathvector(
    num_nodes: usize,
    seed: u64,
    streaming: StreamingConfig,
) -> (usize, usize, usize) {
    let edges = pathvector::random_graph(num_nodes, 3, seed);
    let specs = pathvector::node_specs(num_nodes, &edges);
    let config = DeploymentConfig {
        security: SecurityConfig::new(AuthScheme::HmacSha1, EncScheme::None),
        seed,
        allow_recursive_negation: true,
        streaming,
        ..DeploymentConfig::default()
    };
    let mut deployment = Deployment::build(&pathvector::app_source(), &specs, config).unwrap();
    let report = deployment.run().unwrap();
    let mut best_cost_entries = 0usize;
    let mut nodes_with_route_to_zero = 0usize;
    for i in 0..num_nodes {
        let principal = pathvector::principal_name(i);
        let best = deployment.query(&principal, "bestcost");
        best_cost_entries += best.len();
        if i != 0
            && best.iter().any(|t| {
                t.get(1).and_then(|v| v.as_str()) == Some(pathvector::principal_name(0).as_str())
            })
        {
            nodes_with_route_to_zero += 1;
        }
    }
    (
        nodes_with_route_to_zero,
        best_cost_entries,
        report.rejected_batches,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// On any random topology the protocol *outcome* — routes found, join
    /// entries, policy verdicts — is identical whether deltas travel one
    /// envelope per flush or coalesced under credit-based backpressure.
    /// Scheduling counters (total transactions / messages) are deliberately
    /// not compared: virtual time advances by measured wall-clock compute,
    /// so duplicate-resend counts vary between any two runs of the same
    /// scenario, streaming or not.
    #[test]
    fn pathvector_outcome_is_independent_of_streaming(num_nodes in 4usize..7,
                                                      seed in 0u64..1000) {
        let per_envelope = run_pathvector(num_nodes, seed, StreamingConfig::disabled());
        let streamed = run_pathvector(num_nodes, seed, StreamingConfig::with_knobs(16, 64));
        prop_assert_eq!(streamed.0, per_envelope.0);
        prop_assert_eq!(streamed.1, per_envelope.1);
        prop_assert_eq!(streamed.2, per_envelope.2);
    }
}
