//! End-to-end distributed retraction through the authenticated update
//! stream: retracting a fact on its origin node must converge every remote
//! fixpoint — and, with durability enabled, every store Merkle root — to the
//! state of a deployment where the fact was never asserted.  Exercised across
//! plain, encrypted, and durable channel configurations, including the
//! crash/recovery-replay variant and rejection of forged retractions.

use proptest::prelude::*;
use secureblox::policy::SecurityConfig;
use secureblox::runtime::{
    DeltaOp, Deployment, DeploymentConfig, NodeSpec, UpdateDelta, UpdateEnvelope,
};
use secureblox::{AuthScheme, DurabilityConfig, EncScheme, Value};
use secureblox_datalog::codec::serialize_tuple;
use secureblox_datalog::value::Tuple;
use std::path::PathBuf;

/// Gossip + transitive reachability: links are exported to every peer, so a
/// retraction at the origin must cascade through imported `remote_link`
/// facts and the recursively derived `reach` relation on every node.
const REACH_APP: &str = r#"
    link(N1, N2) -> node(N1), node(N2).
    remote_link(N1, N2) -> node(N1), node(N2).
    reach(N1, N2) -> node(N1), node(N2).
    exportable(`remote_link).

    says[`remote_link](self[], U, X, Y) <- link(X, Y), principal(U), U != self[].
    reach(X, Y) <- link(X, Y).
    reach(X, Y) <- remote_link(X, Y).
    reach(X, Z) <- reach(X, Y), reach(Y, Z).
"#;

const PRINCIPALS: [&str; 3] = ["n0", "n1", "n2"];

fn fresh_dir(label: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sbx-retract-{label}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn link(a: &str, b: &str) -> (String, Tuple) {
    ("link".into(), vec![Value::str(a), Value::str(b)])
}

/// Node specs for a set of directed edges (edge (i, j) lands on node i).
fn specs(edges: &[(usize, usize)]) -> Vec<NodeSpec> {
    let mut specs: Vec<NodeSpec> = PRINCIPALS.iter().map(|p| NodeSpec::new(*p)).collect();
    for &(a, b) in edges {
        specs[a].base_facts.push(link(PRINCIPALS[a], PRINCIPALS[b]));
    }
    specs
}

fn config(security: SecurityConfig, durable_dir: Option<&PathBuf>) -> DeploymentConfig {
    DeploymentConfig {
        security,
        durability: durable_dir.map(DurabilityConfig::new),
        ..DeploymentConfig::default()
    }
}

/// Every observable fact of the deployment, sorted for comparison.
fn observable_state(deployment: &Deployment) -> Vec<(String, String, Vec<Tuple>)> {
    let mut out = Vec::new();
    for principal in PRINCIPALS {
        for pred in [
            "link",
            "remote_link",
            "reach",
            "says$remote_link",
            "sig$remote_link",
        ] {
            let mut tuples = deployment.query(principal, pred);
            tuples.sort_by_key(|t| serialize_tuple(t));
            out.push((principal.to_string(), pred.to_string(), tuples));
        }
    }
    out
}

/// The core equivalence check: deploy with `edges` plus `poison`, run,
/// retract the poison edge at its origin, run again — the result must equal
/// a deployment where the poison edge never existed.  With durability, the
/// per-node Merkle roots must match too.
fn assert_retraction_equivalence(
    label: &str,
    security: SecurityConfig,
    edges: &[(usize, usize)],
    poison: (usize, usize),
    durable: bool,
) {
    let mut with_poison: Vec<(usize, usize)> = edges.to_vec();
    with_poison.push(poison);

    let dir_a = fresh_dir(&format!("{label}-a"));
    let dir_b = fresh_dir(&format!("{label}-b"));
    let (dur_a, dur_b) = if durable {
        (Some(&dir_a), Some(&dir_b))
    } else {
        (None, None)
    };

    let mut poisoned = Deployment::build(
        REACH_APP,
        &specs(&with_poison),
        config(security.clone(), dur_a),
    )
    .unwrap();
    poisoned.run().unwrap();
    let origin = PRINCIPALS[poison.0];
    poisoned
        .retract(
            origin,
            vec![link(PRINCIPALS[poison.0], PRINCIPALS[poison.1])],
        )
        .unwrap();
    let report = poisoned.run().unwrap();
    assert_eq!(report.rejected_batches, 0, "{label}: {report:?}");
    assert!(report.retractions_applied > 0, "{label}: {report:?}");

    let mut clean = Deployment::build(REACH_APP, &specs(edges), config(security, dur_b)).unwrap();
    clean.run().unwrap();

    assert_eq!(
        observable_state(&poisoned),
        observable_state(&clean),
        "{label}: retracted deployment differs from never-asserted deployment"
    );
    if durable {
        let roots_poisoned = poisoned.edb_roots().unwrap();
        let roots_clean = clean.edb_roots().unwrap();
        assert_eq!(
            roots_poisoned, roots_clean,
            "{label}: store Merkle roots differ from never-asserted run"
        );
    }
}

const TRIANGLE: [(usize, usize); 3] = [(0, 1), (1, 2), (2, 0)];
const POISON: (usize, usize) = (0, 2);

#[test]
fn retraction_converges_plain_channel() {
    assert_retraction_equivalence(
        "plain",
        SecurityConfig::new(AuthScheme::NoAuth, EncScheme::None),
        &TRIANGLE,
        POISON,
        false,
    );
}

#[test]
fn retraction_converges_signed_channel() {
    assert_retraction_equivalence(
        "hmac",
        SecurityConfig::new(AuthScheme::HmacSha1, EncScheme::None),
        &TRIANGLE,
        POISON,
        false,
    );
}

#[test]
fn retraction_converges_encrypted_channel() {
    assert_retraction_equivalence(
        "aes",
        SecurityConfig::new(AuthScheme::HmacSha1, EncScheme::Aes128),
        &TRIANGLE,
        POISON,
        false,
    );
}

#[test]
fn retraction_converges_durable_channel_with_matching_roots() {
    assert_retraction_equivalence(
        "durable",
        SecurityConfig::new(AuthScheme::HmacSha1, EncScheme::None),
        &TRIANGLE,
        POISON,
        true,
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The equivalence holds for random topologies, a random poisoned edge,
    /// and every channel configuration: plain, signed, encrypted, durable.
    #[test]
    fn retraction_equivalence_holds_on_random_topologies(
        edge_mask in 0u8..64,
        poison_index in 0usize..6,
        channel in 0usize..3,
    ) {
        // All six directed edges over three nodes.
        let all: Vec<(usize, usize)> = vec![(0, 1), (1, 0), (1, 2), (2, 1), (2, 0), (0, 2)];
        let poison = all[poison_index];
        let edges: Vec<(usize, usize)> = all
            .iter()
            .enumerate()
            .filter(|(i, e)| edge_mask & (1 << i) != 0 && **e != poison)
            .map(|(_, e)| *e)
            .collect();
        let (security, durable) = match channel {
            0 => (SecurityConfig::new(AuthScheme::NoAuth, EncScheme::None), false),
            1 => (SecurityConfig::new(AuthScheme::HmacSha1, EncScheme::Aes128), false),
            _ => (SecurityConfig::new(AuthScheme::HmacSha1, EncScheme::None), true),
        };
        let label = format!("prop-{edge_mask}-{poison_index}-{channel}");
        assert_retraction_equivalence(&label, security, &edges, poison, durable);
    }
}

#[test]
fn retraction_survives_crash_and_recovery_replay() {
    // Retract, crash, recover: the receivers' WALs logged the delivered
    // retractions, so replay must reproduce the retracted fixpoint and the
    // same Merkle roots — and a further run() must not resurrect the fact.
    let dir = fresh_dir("recovery");
    let security = SecurityConfig::new(AuthScheme::HmacSha1, EncScheme::None);
    let mut with_poison: Vec<(usize, usize)> = TRIANGLE.to_vec();
    with_poison.push(POISON);
    let node_specs = specs(&with_poison);

    let mut deployment =
        Deployment::build(REACH_APP, &node_specs, config(security.clone(), Some(&dir))).unwrap();
    deployment.run().unwrap();
    deployment
        .retract("n0", vec![link(PRINCIPALS[POISON.0], PRINCIPALS[POISON.1])])
        .unwrap();
    deployment.run().unwrap();
    let state = observable_state(&deployment);
    let roots = deployment.edb_roots().unwrap();
    drop(deployment);

    let mut recovered =
        Deployment::recover(&dir, REACH_APP, &node_specs, config(security, Some(&dir))).unwrap();
    assert_eq!(observable_state(&recovered), state);
    assert_eq!(recovered.edb_roots().unwrap(), roots);
    recovered.run().unwrap();
    assert_eq!(
        observable_state(&recovered),
        state,
        "re-running after recovery resurrected retracted state"
    );
}

#[test]
fn forged_retraction_is_rejected() {
    // A retract delta whose signature does not verify — or that names a
    // principal other than the message sender — must be rejected without
    // touching the receiver's state.
    let security = SecurityConfig::new(AuthScheme::HmacSha1, EncScheme::None);
    let mut deployment =
        Deployment::build(REACH_APP, &specs(&TRIANGLE), config(security, None)).unwrap();
    deployment.run().unwrap();
    let before = observable_state(&deployment);

    // n1 legitimately exported link(n1, n2) to n0; forge its withdrawal with
    // a bogus tag.
    let says_tuple = vec![
        Value::str("n1"),
        Value::str("n0"),
        Value::str("n1"),
        Value::str("n2"),
    ];
    let forged = UpdateEnvelope {
        seq: 1_000_000,
        deltas: vec![UpdateDelta {
            op: DeltaOp::Retract,
            pred: "remote_link".into(),
            tuple: says_tuple,
            signature: vec![0u8; 20],
        }],
    };
    deployment.inject_message(1, 0, forged.encode());
    let report = deployment.run().unwrap();
    assert!(report.rejected_batches >= 1, "{report:?}");
    assert_eq!(report.retractions_applied, 0, "{report:?}");
    assert_eq!(
        observable_state(&deployment),
        before,
        "forged retraction changed receiver state"
    );
}

#[test]
fn forged_sequence_number_cannot_mute_a_link() {
    // An envelope of forged deltas claiming a huge stream sequence must not
    // advance the receiver's duplicate-suppression watermark: the peer's
    // legitimate traffic (with small sequence numbers) must still arrive.
    let security = SecurityConfig::new(AuthScheme::HmacSha1, EncScheme::None);
    let mut deployment =
        Deployment::build(REACH_APP, &specs(&TRIANGLE), config(security, None)).unwrap();
    let forged = UpdateEnvelope {
        seq: u64::MAX,
        deltas: vec![UpdateDelta {
            op: DeltaOp::Assert,
            pred: "remote_link".into(),
            tuple: vec![
                Value::str("n1"),
                Value::str("n0"),
                Value::str("evil"),
                Value::str("evil2"),
            ],
            signature: vec![0u8; 20],
        }],
    };
    deployment.inject_message(1, 0, forged.encode());
    let report = deployment.run().unwrap();
    assert!(report.rejected_batches >= 1, "{report:?}");
    let remote = deployment.query("n0", "remote_link");
    assert!(
        remote.contains(&vec![Value::str("n1"), Value::str("n2")]),
        "n1's legitimate export was muted by the forged sequence: {remote:?}"
    );
    assert!(!remote.contains(&vec![Value::str("evil"), Value::str("evil2")]));
}
