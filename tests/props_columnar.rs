//! Properties of the interned columnar engine.
//!
//! Three things must hold no matter how the batch executor shards work:
//!
//! * **Worker-count invariance** — the fixpoint (every relation, byte for
//!   byte) and the store Merkle root are identical at every worker count in
//!   `{1, 2, 4, 7}` with the shard threshold forced to 1.
//! * **Dictionary ids never leak** — tuples observed through `query` must
//!   serialize (via the canonical codec) byte-identically to freshly
//!   constructed [`Value`]s computed by an independent model of the program,
//!   and a store fed the reconstructed tuples must commit to the same Merkle
//!   root.  An interner id escaping into a `Value`, the codec, or a Merkle
//!   leaf changes those bytes.
//! * **Durability round-trip** — logging the fixpoint into a `FactStore`,
//!   checkpointing, and recovering reproduces the same root and fact count.
//!
//! The generated program exercises the columnar strides the batch plane
//! special-cases (1, 2, and wide), mixed value types (ints, strings, bytes),
//! recursion, negation, and aggregation.

use proptest::prelude::*;
use secureblox_datalog::codec::serialize_tuple;
use secureblox_datalog::{EvalConfig, EvalOptions, Value, Workspace};
use secureblox_store::{derive_node_key, FactStore};
use std::collections::{BTreeMap, BTreeSet};
use std::path::PathBuf;

const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 7];

const PROGRAM: &str = "tc(X, Y) <- e0(X, Y).\n\
     tc(X, Z) <- e0(X, Y), tc(Y, Z).\n\
     labeled(X, Y, L) <- tc(X, Y), lab(Y, L).\n\
     wide(X, Y, Z, L) <- e0(X, Y), e1(Y, Z), lab(Z, L).\n\
     tagged(X, B) <- e1(X, Y), tag(Y, B).\n\
     filt(X, Y) <- tc(X, Y), !e1(X, Y).\n\
     cnt[X] = S <- agg<< S = sum(Y) >> e0(X, Y).\n";

fn arb_edges() -> impl Strategy<Value = Vec<(u8, u8)>> {
    proptest::collection::vec(
        (any::<u8>(), any::<u8>()).prop_map(|(a, b)| (a % 8, b % 8)),
        0..32,
    )
}

fn label(i: u8) -> Value {
    Value::str(format!("label-{i}"))
}

fn tag_bytes(i: u8) -> Value {
    Value::bytes(vec![i, 0xF0])
}

/// Install the program, load the edges plus the fixed `lab`/`tag` tables,
/// and converge at the given worker count.
fn run_fixpoint(e0: &[(u8, u8)], e1: &[(u8, u8)], workers: usize) -> Workspace {
    let mut ws = Workspace::with_config(EvalConfig {
        exec: EvalOptions {
            workers,
            parallel_threshold: 1,
        },
        ..EvalConfig::default()
    });
    ws.install_source(PROGRAM).unwrap();
    for (pred, edges) in [("e0", e0), ("e1", e1)] {
        for (a, b) in edges {
            ws.assert_fact(pred, vec![Value::Int(*a as i64), Value::Int(*b as i64)])
                .unwrap();
        }
    }
    for i in 0..8u8 {
        ws.assert_fact("lab", vec![Value::Int(i as i64), label(i)])
            .unwrap();
        ws.assert_fact("tag", vec![Value::Int(i as i64), tag_bytes(i)])
            .unwrap();
    }
    ws.fixpoint().unwrap();
    ws
}

/// Independent model: transitive closure of `e0` by naive iteration.
fn reachability(e0: &[(u8, u8)]) -> BTreeSet<(u8, u8)> {
    let mut reach: BTreeSet<(u8, u8)> = e0.iter().copied().collect();
    loop {
        let mut next = reach.clone();
        for &(x, y) in &reach {
            for &(y2, z) in &reach {
                if y == y2 {
                    next.insert((x, z));
                }
            }
        }
        if next == reach {
            return reach;
        }
        reach = next;
    }
}

/// Sorted canonical encodings of a tuple set — the byte-level view both the
/// codec and the Merkle leaves are built from.
fn encodings<'a>(tuples: impl IntoIterator<Item = &'a Vec<Value>>) -> Vec<Vec<u8>> {
    let mut out: Vec<Vec<u8>> = tuples.into_iter().map(|t| serialize_tuple(t)).collect();
    out.sort();
    out
}

fn merkle_root(facts: &[(String, Vec<Value>)], tag: &str) -> String {
    let dir: PathBuf =
        std::env::temp_dir().join(format!("sbx-props-columnar-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let key = derive_node_key(1, "cols");
    let mut store = FactStore::open(&dir, &key).unwrap();
    store
        .log_inserts(facts.iter().map(|(p, t)| (p.as_str(), t)), 1)
        .unwrap();
    let root = store.base_root_hex();
    drop(store);
    let _ = std::fs::remove_dir_all(&dir);
    root
}

fn all_facts(ws: &Workspace) -> Vec<(String, Vec<Value>)> {
    let mut out = Vec::new();
    for pred in ws.predicate_names() {
        for tuple in ws.query(&pred) {
            out.push((pred.clone(), tuple));
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]
    #[test]
    fn columnar_fixpoint_is_worker_invariant_and_ids_never_leak(
        e0 in arb_edges(),
        e1 in arb_edges(),
    ) {
        let baseline = run_fixpoint(&e0, &e1, WORKER_COUNTS[0]);

        // ------------------------------------------------------------------
        // Dictionary ids never leak into codec bytes: every derived relation
        // must serialize identically to tuples rebuilt from an independent
        // model that never touched the interner.
        // ------------------------------------------------------------------
        let tc = reachability(&e0);
        let e1_set: BTreeSet<(u8, u8)> = e1.iter().copied().collect();
        let int = |v: u8| Value::Int(v as i64);

        let model_tc: Vec<Vec<Value>> =
            tc.iter().map(|&(x, y)| vec![int(x), int(y)]).collect();
        prop_assert!(
            encodings(&baseline.query("tc")) == encodings(&model_tc),
            "tc diverged from the model at the codec level"
        );

        let model_labeled: Vec<Vec<Value>> = tc
            .iter()
            .map(|&(x, y)| vec![int(x), int(y), label(y)])
            .collect();
        prop_assert!(
            encodings(&baseline.query("labeled")) == encodings(&model_labeled),
            "labeled (interned strings) diverged from the model"
        );

        let mut wide: BTreeSet<(u8, u8, u8)> = BTreeSet::new();
        for &(x, y) in &e0 {
            for &(y2, z) in &e1_set {
                if y == y2 {
                    wide.insert((x, y, z));
                }
            }
        }
        let model_wide: Vec<Vec<Value>> = wide
            .iter()
            .map(|&(x, y, z)| vec![int(x), int(y), int(z), label(z)])
            .collect();
        prop_assert!(
            encodings(&baseline.query("wide")) == encodings(&model_wide),
            "wide triple join diverged from the model"
        );

        let tagged: BTreeSet<(u8, u8)> = e1_set.iter().copied().collect();
        let model_tagged: Vec<Vec<Value>> = tagged
            .iter()
            .map(|&(x, y)| vec![int(x), tag_bytes(y)])
            .collect();
        prop_assert!(
            encodings(&baseline.query("tagged")) == encodings(&model_tagged),
            "tagged (interned bytes) diverged from the model"
        );

        let model_filt: Vec<Vec<Value>> = tc
            .iter()
            .filter(|pair| !e1_set.contains(pair))
            .map(|&(x, y)| vec![int(x), int(y)])
            .collect();
        prop_assert!(
            encodings(&baseline.query("filt")) == encodings(&model_filt),
            "negation diverged from the model"
        );

        let mut sums: BTreeMap<u8, i64> = BTreeMap::new();
        for &(x, y) in e0.iter().collect::<BTreeSet<_>>() {
            *sums.entry(x).or_insert(0) += y as i64;
        }
        let model_cnt: Vec<Vec<Value>> = sums
            .iter()
            .map(|(&x, &s)| vec![int(x), Value::Int(s)])
            .collect();
        prop_assert!(
            encodings(&baseline.query("cnt")) == encodings(&model_cnt),
            "aggregate diverged from the model"
        );

        // ------------------------------------------------------------------
        // Merkle leaves see values, not ids: a store fed the workspace's
        // tuples and a store fed the model's reconstructed tuples commit to
        // the same root.
        // ------------------------------------------------------------------
        let baseline_facts = all_facts(&baseline);
        let baseline_root = merkle_root(&baseline_facts, "ws");
        let mut model_facts: Vec<(String, Vec<Value>)> = Vec::new();
        for (pred, tuples) in [
            ("tc", &model_tc),
            ("labeled", &model_labeled),
            ("wide", &model_wide),
            ("tagged", &model_tagged),
            ("filt", &model_filt),
            ("cnt", &model_cnt),
        ] {
            for tuple in tuples {
                model_facts.push((pred.to_string(), tuple.clone()));
            }
        }
        for (pred, tuple) in &baseline_facts {
            if !matches!(
                pred.as_str(),
                "tc" | "labeled" | "wide" | "tagged" | "filt" | "cnt"
            ) {
                model_facts.push((pred.clone(), tuple.clone()));
            }
        }
        prop_assert!(
            merkle_root(&model_facts, "model") == baseline_root,
            "interner identity influenced a Merkle leaf"
        );

        // ------------------------------------------------------------------
        // Worker-count invariance: relations and roots are byte-identical.
        // ------------------------------------------------------------------
        for &workers in &WORKER_COUNTS[1..] {
            let ws = run_fixpoint(&e0, &e1, workers);
            prop_assert_eq!(baseline.predicate_names(), ws.predicate_names());
            for pred in baseline.predicate_names() {
                prop_assert!(
                    baseline.query(&pred) == ws.query(&pred),
                    "relation {} diverged at {} workers",
                    pred,
                    workers
                );
            }
            prop_assert!(
                merkle_root(&all_facts(&ws), &format!("w{workers}")) == baseline_root,
                "Merkle root diverged at {} workers",
                workers
            );
        }

        // ------------------------------------------------------------------
        // Durability round-trip: checkpoint + recovery reproduce the root.
        // ------------------------------------------------------------------
        let dir: PathBuf = std::env::temp_dir()
            .join(format!("sbx-props-columnar-dur-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let key = derive_node_key(1, "cols");
        let mut store = FactStore::open(&dir, &key).unwrap();
        store
            .log_inserts(baseline_facts.iter().map(|(p, t)| (p.as_str(), t)), 1)
            .unwrap();
        let count = store.base_fact_count();
        store.checkpoint(1).unwrap();
        drop(store);
        let recovered = FactStore::open(&dir, &key).unwrap();
        prop_assert_eq!(recovered.base_root_hex(), baseline_root);
        prop_assert_eq!(recovered.base_fact_count(), count);
        drop(recovered);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
