//! Integration tests of the anonymity constructs (paper §6.2, §7.3),
//! including retraction over onion circuits: withdrawals ride the same
//! delta envelope as assertions, wrapped in the same onion layers.

use secureblox::apps::anonjoin::{self, AnonJoinConfig, INITIATOR, OWNER};
use secureblox::Value;

#[test]
fn anonymous_join_is_correct_and_anonymous() {
    let outcome = anonjoin::run(&AnonJoinConfig {
        num_relays: 3,
        public_rows: 90,
        interest_rows: 6,
        ..AnonJoinConfig::default()
    })
    .unwrap();
    assert!(outcome.expected_matches > 0);
    assert_eq!(outcome.replies_at_initiator, outcome.expected_matches);
    assert!(outcome.owner_never_saw_initiator);
}

#[test]
fn longer_circuits_cost_more_bandwidth() {
    let short = anonjoin::run(&AnonJoinConfig {
        num_relays: 1,
        public_rows: 60,
        interest_rows: 5,
        ..AnonJoinConfig::default()
    })
    .unwrap();
    let long = anonjoin::run(&AnonJoinConfig {
        num_relays: 4,
        public_rows: 60,
        interest_rows: 5,
        ..AnonJoinConfig::default()
    })
    .unwrap();
    assert_eq!(short.replies_at_initiator, long.replies_at_initiator);
    // Every extra relay forwards every cell once more.
    assert!(
        long.report.per_node_kb * long.report.num_nodes as f64
            > short.report.per_node_kb * short.report.num_nodes as f64
    );
}

#[test]
fn retraction_propagates_through_the_circuit_both_ways() {
    // Forward: the initiator retracting an interest withdraws the anonymous
    // request at the owner.  Backward: the owner retracting a public row
    // withdraws the reply at the initiator.  Both travel as Retract deltas
    // inside ordinary onion cells.
    let config = AnonJoinConfig {
        num_relays: 2,
        public_rows: 40,
        interest_rows: 4,
        ..AnonJoinConfig::default()
    };
    let mut deployment = anonjoin::build_deployment(&config).unwrap();
    deployment.run().unwrap();
    let replies_before = deployment.query(INITIATOR, "anon_reply$publicdata").len();
    assert!(replies_before > 0);

    // Backward direction: the owner withdraws the public row with key 0
    // (which matches alice's interest 0), so her reply must disappear.
    deployment
        .retract(
            OWNER,
            vec![("publicdata".into(), vec![Value::Int(0), Value::Int(1000)])],
        )
        .unwrap();
    let report = deployment.run().unwrap();
    assert!(report.retractions_applied > 0, "{report:?}");
    let replies = deployment.query(INITIATOR, "anon_reply$publicdata");
    assert_eq!(replies.len(), replies_before - 1, "{replies:?}");
    assert!(!replies.contains(&vec![Value::Int(0), Value::Int(1000)]));

    // Forward direction: alice withdraws the interest with key 3; the
    // owner's stored anonymous request for its hash must disappear.
    let requests_before = deployment
        .query(OWNER, "anon_says_id_in$req_publicdata")
        .len();
    deployment
        .retract(
            INITIATOR,
            vec![("interests".into(), vec![Value::Int(3), Value::Int(1)])],
        )
        .unwrap();
    deployment.run().unwrap();
    let requests_after = deployment
        .query(OWNER, "anon_says_id_in$req_publicdata")
        .len();
    assert_eq!(requests_after, requests_before - 1);
    // And the reply that request produced is withdrawn from alice in turn.
    let replies = deployment.query(INITIATOR, "anon_reply$publicdata");
    assert!(!replies.contains(&vec![Value::Int(3), Value::Int(1003)]));
    assert_eq!(replies.len(), replies_before - 2);
}
