//! Integration tests of the anonymity constructs (paper §6.2, §7.3).

use secureblox::apps::anonjoin::{self, AnonJoinConfig};

#[test]
fn anonymous_join_is_correct_and_anonymous() {
    let outcome = anonjoin::run(&AnonJoinConfig {
        num_relays: 3,
        public_rows: 90,
        interest_rows: 6,
        ..AnonJoinConfig::default()
    })
    .unwrap();
    assert!(outcome.expected_matches > 0);
    assert_eq!(outcome.replies_at_initiator, outcome.expected_matches);
    assert!(outcome.owner_never_saw_initiator);
}

#[test]
fn longer_circuits_cost_more_bandwidth() {
    let short = anonjoin::run(&AnonJoinConfig {
        num_relays: 1,
        public_rows: 60,
        interest_rows: 5,
        ..AnonJoinConfig::default()
    })
    .unwrap();
    let long = anonjoin::run(&AnonJoinConfig {
        num_relays: 4,
        public_rows: 60,
        interest_rows: 5,
        ..AnonJoinConfig::default()
    })
    .unwrap();
    assert_eq!(short.replies_at_initiator, long.replies_at_initiator);
    // Every extra relay forwards every cell once more.
    assert!(
        long.report.per_node_kb * long.report.num_nodes as f64
            > short.report.per_node_kb * short.report.num_nodes as f64
    );
}
