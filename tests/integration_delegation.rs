//! Integration tests for trust delegation, restricted delegation, and
//! explicit write-access authorization (paper §3.2 "Authorization" and §6.1),
//! exercised purely through the public deployment API.

use secureblox::policy::says::delegation_restriction;
use secureblox::policy::{SecurityConfig, TrustModel};
use secureblox::runtime::{Deployment, DeploymentConfig, NodeSpec};
use secureblox::{AuthScheme, Value};

/// Gossip application: every node tells every other principal about its local
/// `observation` facts; receivers import them into `report`.
const GOSSIP: &str = r#"
    observation(K, V) -> int[32](K), int[32](V).
    report(K, V) -> int[32](K), int[32](V).
    exportable(`report).

    says[`report](self[], U, K, V) <- observation(K, V), principal(U), U != self[].
"#;

/// Three nodes; node `i` observes the single fact (i, 100 + i).
fn specs() -> Vec<NodeSpec> {
    (0..3)
        .map(|i| {
            let mut spec = NodeSpec::new(format!("n{i}"));
            spec.base_facts.push((
                "observation".into(),
                vec![Value::Int(i as i64), Value::Int(100 + i as i64)],
            ));
            spec
        })
        .collect()
}

fn imported_senders(deployment: &Deployment, principal: &str) -> Vec<i64> {
    let mut keys: Vec<i64> = deployment
        .query(principal, "report")
        .iter()
        .filter_map(|t| t[0].as_int())
        .collect();
    keys.sort_unstable();
    keys
}

#[test]
fn trustworthy_model_imports_only_from_trusted_principals() {
    let mut specs = specs();
    // n0 trusts only n1; n1 and n2 trust everyone.
    specs[0]
        .base_facts
        .push(("trustworthy".into(), vec![Value::str("n1")]));
    for spec in specs.iter_mut().skip(1) {
        for j in 0..3 {
            spec.base_facts
                .push(("trustworthy".into(), vec![Value::str(format!("n{j}"))]));
        }
    }
    let config = DeploymentConfig {
        security: SecurityConfig {
            auth: AuthScheme::HmacSha1,
            trust: TrustModel::Trustworthy,
            ..SecurityConfig::default()
        },
        grant_default_trust: false,
        ..DeploymentConfig::default()
    };
    let mut deployment = Deployment::build(GOSSIP, &specs, config).unwrap();
    let report = deployment.run().unwrap();
    assert_eq!(report.rejected_batches, 0);

    // n0 only imported n1's observation (key 1); the others imported both
    // remote observations.
    assert_eq!(imported_senders(&deployment, "n0"), vec![1]);
    assert_eq!(imported_senders(&deployment, "n1"), vec![0, 2]);
    assert_eq!(imported_senders(&deployment, "n2"), vec![0, 1]);

    // The untrusted fact still arrived as a says tuple — it was received and
    // authenticated, just not imported (delegation is a local decision).
    let said_from_n2: Vec<_> = deployment
        .query("n0", "says$report")
        .into_iter()
        .filter(|t| t[0].as_str() == Some("n2") && t[1].as_str() == Some("n0"))
        .collect();
    assert_eq!(said_from_n2.len(), 1);
}

#[test]
fn default_trust_grant_preserves_the_benign_world() {
    // With the default configuration (trust everyone), all observations flow.
    let config = DeploymentConfig {
        security: SecurityConfig {
            auth: AuthScheme::NoAuth,
            trust: TrustModel::Trustworthy,
            ..SecurityConfig::default()
        },
        ..DeploymentConfig::default()
    };
    let mut deployment = Deployment::build(GOSSIP, &specs(), config).unwrap();
    deployment.run().unwrap();
    assert_eq!(imported_senders(&deployment, "n0"), vec![1, 2]);
}

#[test]
fn per_predicate_delegation_is_scoped_to_the_predicate() {
    // Two exportable predicates; n0 delegates `report` to n1 but `alert` to n2.
    const APP: &str = r#"
        observation(K, V) -> int[32](K), int[32](V).
        report(K, V) -> int[32](K), int[32](V).
        alert(K) -> int[32](K).
        exportable(`report).
        exportable(`alert).

        says[`report](self[], U, K, V) <- observation(K, V), principal(U), U != self[].
        says[`alert](self[], U, K) <- observation(K, V), V > 100, principal(U), U != self[].
    "#;
    let mut specs = specs();
    specs[0]
        .base_facts
        .push(("trustworthyPerPred$report".into(), vec![Value::str("n1")]));
    specs[0]
        .base_facts
        .push(("trustworthyPerPred$alert".into(), vec![Value::str("n2")]));
    let config = DeploymentConfig {
        security: SecurityConfig {
            auth: AuthScheme::NoAuth,
            trust: TrustModel::PerPredicate,
            ..SecurityConfig::default()
        },
        grant_default_trust: false,
        ..DeploymentConfig::default()
    };
    let mut deployment = Deployment::build(APP, &specs, config).unwrap();
    deployment.run().unwrap();

    // report came from n1 only; alert came from n2 only.
    assert_eq!(imported_senders(&deployment, "n0"), vec![1]);
    let alerts: Vec<i64> = deployment
        .query("n0", "alert")
        .iter()
        .filter_map(|t| t[0].as_int())
        .collect();
    assert_eq!(
        alerts,
        vec![2],
        "only n2's alert (observation key 2) is delegated"
    );
}

#[test]
fn restricted_delegation_constraint_rejects_bad_grants() {
    // The §6.1 constraint: report may only be delegated to n1.
    let mut specs = specs();
    specs[0]
        .base_facts
        .push(("trustworthyPerPred$report".into(), vec![Value::str("n2")]));
    let config = DeploymentConfig {
        security: SecurityConfig {
            auth: AuthScheme::NoAuth,
            trust: TrustModel::PerPredicate,
            ..SecurityConfig::default()
        },
        grant_default_trust: false,
        extra_policies: vec![delegation_restriction("report", "n1")],
        ..DeploymentConfig::default()
    };
    let mut deployment = Deployment::build(GOSSIP, &specs, config).unwrap();
    let report = deployment.run().unwrap();
    // The bootstrap batch carrying the bad delegation (and n0's own
    // observation) is rolled back; nothing from n2 is ever imported.
    assert!(report.rejected_batches >= 1);
    assert_eq!(imported_senders(&deployment, "n0"), Vec::<i64>::new());
}

#[test]
fn explicit_write_access_grants_gate_imports() {
    // writeAccess[T] is granted explicitly: n0 only accepts writes from n1
    // (and from itself — the constraint covers locally derived says tuples
    // too, exactly as the paper's generic rule is written).
    let mut specs = specs();
    specs[0]
        .base_facts
        .push(("writeAccess$report".into(), vec![Value::str("n0")]));
    specs[0]
        .base_facts
        .push(("writeAccess$report".into(), vec![Value::str("n1")]));
    // The other nodes grant write access to everyone.
    for spec in specs.iter_mut().skip(1) {
        for j in 0..3 {
            spec.base_facts.push((
                "writeAccess$report".into(),
                vec![Value::str(format!("n{j}"))],
            ));
        }
    }
    let config = DeploymentConfig {
        security: SecurityConfig {
            auth: AuthScheme::NoAuth,
            write_access: true,
            ..SecurityConfig::default()
        },
        grant_default_write_access: false,
        ..DeploymentConfig::default()
    };
    let mut deployment = Deployment::build(GOSSIP, &specs, config).unwrap();
    let report = deployment.run().unwrap();

    // n2's write to n0 violates the authorization constraint, so that batch
    // is rejected at n0; n1's write is accepted and imported.
    assert!(report.rejected_batches >= 1);
    assert_eq!(imported_senders(&deployment, "n0"), vec![1]);
    assert_eq!(imported_senders(&deployment, "n1"), vec![0, 2]);
}
