//! Property-based tests over the public SecureBlox API: the tuple codec, the
//! policy generators, and small end-to-end deployments on random inputs.
//!
//! The end-to-end properties deliberately use small node counts — the intent
//! is to show that the protocol outcome (routes found, join results produced,
//! no rejected batches) is independent of the random topology and of the
//! authentication scheme, not to benchmark.

use proptest::prelude::*;
use secureblox::apps::{hashjoin, pathvector};
use secureblox::policy::{says_policy, SecurityConfig, TrustModel};
use secureblox::runtime::{
    deserialize_tuple, serialize_tuple, DeltaOp, UpdateDelta, UpdateEnvelope,
};
use secureblox::{parse_program, AuthScheme, EncScheme, Value};

// ---------------------------------------------------------------------------
// Tuple codec
// ---------------------------------------------------------------------------

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        any::<i64>().prop_map(Value::Int),
        "[ -~]{0,24}".prop_map(Value::str),
        any::<bool>().prop_map(Value::Bool),
        proptest::collection::vec(any::<u8>(), 0..64).prop_map(Value::bytes),
        any::<u64>().prop_map(Value::Entity),
        "[a-z][a-z0-9_]{0,12}".prop_map(Value::pred),
    ]
}

fn arb_tuple() -> impl Strategy<Value = Vec<Value>> {
    proptest::collection::vec(arb_value(), 0..8)
}

proptest! {
    /// serialize → deserialize is the identity, and consumes exactly the
    /// bytes it produced (so batches of tuples can be concatenated).
    #[test]
    fn tuple_codec_roundtrip(tuple in arb_tuple()) {
        let bytes = serialize_tuple(&tuple);
        let mut pos = 0;
        let back = deserialize_tuple(&bytes, &mut pos).unwrap();
        prop_assert_eq!(back, tuple);
        prop_assert_eq!(pos, bytes.len());
    }

    /// Concatenated tuples decode back in order.
    #[test]
    fn tuple_codec_supports_concatenation(tuples in proptest::collection::vec(arb_tuple(), 0..6)) {
        let mut bytes = Vec::new();
        for tuple in &tuples {
            bytes.extend_from_slice(&serialize_tuple(tuple));
        }
        let mut pos = 0;
        let mut decoded = Vec::new();
        for _ in 0..tuples.len() {
            decoded.push(deserialize_tuple(&bytes, &mut pos).unwrap());
        }
        prop_assert_eq!(decoded, tuples);
        prop_assert_eq!(pos, bytes.len());
    }

    /// The canonical encoding is deterministic — a requirement for signature
    /// verification, which re-serializes the received tuple.
    #[test]
    fn tuple_codec_is_canonical(tuple in arb_tuple()) {
        prop_assert_eq!(serialize_tuple(&tuple), serialize_tuple(&tuple.clone()));
    }

    /// The update-stream envelope (sequence + ordered signed deltas)
    /// roundtrips for arbitrary contents.
    #[test]
    fn update_envelope_roundtrip(seq in any::<u64>(),
                                 pred in "[a-z][a-z0-9_]{0,16}",
                                 retract in any::<bool>(),
                                 tuple in arb_tuple(),
                                 signature in proptest::collection::vec(any::<u8>(), 0..160)) {
        let envelope = UpdateEnvelope {
            seq,
            deltas: vec![UpdateDelta {
                op: if retract { DeltaOp::Retract } else { DeltaOp::Assert },
                pred,
                tuple,
                signature,
            }],
        };
        let decoded = UpdateEnvelope::decode(&envelope.encode()).unwrap();
        prop_assert_eq!(decoded, envelope);
    }

    /// Decoding never panics on truncated envelopes: it either errors or (for
    /// prefixes that happen to frame correctly) returns some envelope.
    #[test]
    fn update_envelope_decode_never_panics(pred in "[a-z][a-z0-9_]{0,8}",
                                           tuple in arb_tuple(),
                                           cut_fraction in 0.0f64..1.0) {
        let envelope = UpdateEnvelope {
            seq: 3,
            deltas: vec![UpdateDelta {
                op: DeltaOp::Assert,
                pred,
                tuple,
                signature: vec![7u8; 20],
            }],
        };
        let bytes = envelope.encode();
        let cut = ((bytes.len() as f64) * cut_fraction) as usize;
        let _ = UpdateEnvelope::decode(&bytes[..cut.min(bytes.len())]);
    }
}

// ---------------------------------------------------------------------------
// Policy generators
// ---------------------------------------------------------------------------

fn arb_security_config() -> impl Strategy<Value = SecurityConfig> {
    (
        prop_oneof![
            Just(AuthScheme::NoAuth),
            Just(AuthScheme::HmacSha1),
            Just(AuthScheme::Rsa)
        ],
        prop_oneof![Just(EncScheme::None), Just(EncScheme::Aes128)],
        prop_oneof![
            Just(TrustModel::TrustAll),
            Just(TrustModel::Trustworthy),
            Just(TrustModel::PerPredicate)
        ],
        any::<bool>(),
    )
        .prop_map(|(auth, enc, trust, write_access)| SecurityConfig {
            auth,
            enc,
            trust,
            write_access,
            ..SecurityConfig::default()
        })
}

proptest! {
    /// Every generated policy is valid DatalogLB/BloxGenerics source.
    #[test]
    fn generated_policies_always_parse(config in arb_security_config()) {
        let policy = says_policy(&config);
        parse_program(&policy).unwrap();
    }

    /// The policy text reflects the configuration: authentication UDFs appear
    /// iff the scheme requests them, the authorization constraint appears iff
    /// write_access is set, and the figure label matches the scheme pair.
    #[test]
    fn policy_text_tracks_configuration(config in arb_security_config()) {
        let policy = says_policy(&config);
        prop_assert_eq!(policy.contains("rsa_sign"), config.auth == AuthScheme::Rsa);
        prop_assert_eq!(policy.contains("hmac_sign"), config.auth == AuthScheme::HmacSha1);
        prop_assert_eq!(policy.contains("writeAccess"), config.write_access);
        prop_assert_eq!(policy.contains("trustworthyPerPred"), config.trust == TrustModel::PerPredicate);
        let label = config.label();
        prop_assert_eq!(label.contains("AES"), config.enc == EncScheme::Aes128);
        match config.auth {
            AuthScheme::NoAuth => prop_assert!(label.starts_with("NoAuth")),
            AuthScheme::HmacSha1 => prop_assert!(label.starts_with("HMAC")),
            AuthScheme::Rsa => prop_assert!(label.starts_with("RSA")),
        }
    }
}

// ---------------------------------------------------------------------------
// End-to-end: path-vector protocol on random topologies
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// On any connected random topology, every node learns a route to node 0,
    /// no batch is rejected, and the stronger scheme never uses fewer bytes
    /// per node than NoAuth (Figure 6's ordering, as a property).
    #[test]
    fn pathvector_converges_on_random_topologies(num_nodes in 4usize..7, seed in 0u64..1000) {
        let base = pathvector::PathVectorConfig { num_nodes, seed, ..Default::default() };
        let noauth = pathvector::run(&pathvector::PathVectorConfig {
            security: SecurityConfig::new(AuthScheme::NoAuth, EncScheme::None),
            ..base.clone()
        })
        .unwrap();
        let hmac = pathvector::run(&pathvector::PathVectorConfig {
            security: SecurityConfig::new(AuthScheme::HmacSha1, EncScheme::None),
            ..base
        })
        .unwrap();
        for outcome in [&noauth, &hmac] {
            prop_assert_eq!(outcome.nodes_with_route_to_zero, num_nodes - 1);
            prop_assert_eq!(outcome.report.rejected_batches, 0);
            prop_assert!(outcome.best_cost_entries >= num_nodes * (num_nodes - 1));
        }
        prop_assert!(hmac.report.per_node_kb > noauth.report.per_node_kb);
    }
}

// ---------------------------------------------------------------------------
// End-to-end: parallel hash join on random tables
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The distributed secure hash join computes exactly the same number of
    /// results as a local reference join, for random table sizes and seeds.
    #[test]
    fn hashjoin_matches_reference_join(rows_a in 20usize..80, rows_b in 20usize..80,
                                       distinct in 4usize..16, seed in 0u64..1000) {
        let config = hashjoin::HashJoinConfig {
            num_nodes: 3,
            table_a_rows: rows_a,
            table_b_rows: rows_b,
            distinct_join_values: distinct,
            security: SecurityConfig::new(AuthScheme::NoAuth, EncScheme::None),
            seed,
            ..Default::default()
        };
        let (table_a, table_b) = hashjoin::generate_tables(&config);
        let expected = hashjoin::expected_join_size(&table_a, &table_b);
        let outcome = hashjoin::run(&config).unwrap();
        prop_assert_eq!(outcome.expected_results, expected);
        prop_assert_eq!(outcome.results_at_initiator, expected);
        prop_assert_eq!(outcome.report.rejected_batches, 0);
    }
}
