//! Sharding is semantics-free: partitioning the EDB across a node group —
//! with the planner exchanging tuples over the signed update stream — must
//! produce exactly the same *global* results as an unsharded single-node
//! evaluation.  Partitioning changes where tuples live and what travels,
//! never what the deployment as a whole knows.
//!
//! Comparison regimes:
//!
//! * the union of every relation across the group (sorted, deduplicated) is
//!   compared against the unsharded reference across partitions {1, 2, 4} ×
//!   workers {1, 4} × streaming on/off, together with the constraint
//!   verdicts;
//! * at a fixed partitioning, the per-node EDB Merkle roots must be
//!   bit-identical across workers × streaming — executor knobs must not
//!   change any partition's content;
//! * a membership change ([`Deployment::apply_shard_map`]) must move only a
//!   minority of tuples (consistent hashing), keep the global content
//!   digest unchanged, and leave every base tuple at exactly its new ring
//!   owner;
//! * a durable sharded deployment must recover from its WALs to the same
//!   unions and the same Merkle roots the live deployment held.

use proptest::prelude::*;
use secureblox::policy::SecurityConfig;
use secureblox::runtime::{Deployment, DeploymentConfig, NodeSpec, ShardMap, StreamingConfig};
use secureblox::{AuthScheme, DurabilityConfig, EncScheme, Value};
use secureblox_datalog::value::Tuple;
use std::path::PathBuf;

/// A deterministic app exercising all three exchange strategies: `hop2` is a
/// self-join on a non-partition column (shuffle), `heavy` joins two
/// relations sharded on the shared column (co-partitioned), and `boosted`
/// joins against a small replicated relation (local).
const SHARD_APP: &str = r#"
    edge(X, Y) -> int[32](X), int[32](Y).
    weight(X, W) -> int[32](X), int[32](W).
    boost(W) -> int[32](W).
    hop2(X, Z) -> int[32](X), int[32](Z).
    heavy(X, W) -> int[32](X), int[32](W).
    boosted(X, W) -> int[32](X), int[32](W).

    hop2(X, Z) <- edge(X, Y), edge(Y, Z).
    heavy(X, W) <- edge(X, _), weight(X, W).
    boosted(X, W) <- weight(X, W), boost(W).
"#;

const RELATIONS: &[&str] = &["edge", "weight", "boost", "hop2", "heavy", "boosted"];

fn principal_name(i: usize) -> String {
    format!("n{i}")
}

fn base_facts() -> Vec<(String, Tuple)> {
    let mut facts = Vec::new();
    for a in 0..12i64 {
        facts.push((
            "edge".to_string(),
            vec![Value::Int(a), Value::Int((a * 5 + 3) % 12)],
        ));
        facts.push((
            "edge".to_string(),
            vec![Value::Int(a), Value::Int((a * 3 + 7) % 12)],
        ));
        facts.push((
            "weight".to_string(),
            vec![Value::Int(a), Value::Int(a * 10)],
        ));
    }
    for w in [10i64, 30, 50] {
        facts.push(("boost".to_string(), vec![Value::Int(w)]));
    }
    facts
}

/// Distinct sharded base tuples in [`base_facts`] (the generator emits a
/// couple of duplicate edges; set semantics stores each once).
fn distinct_sharded_count() -> usize {
    let mut seen = std::collections::HashSet::new();
    base_facts()
        .into_iter()
        .filter(|(pred, _)| pred == "edge" || pred == "weight")
        .filter(|fact| seen.insert(format!("{fact:?}")))
        .count()
}

fn shard_map(partitions: usize) -> ShardMap {
    ShardMap::new((0..partitions).map(principal_name))
        .shard("edge", 0)
        .shard("weight", 0)
}

fn sharded_config(
    partitions: usize,
    workers: usize,
    streaming: StreamingConfig,
    facts: Vec<(String, Tuple)>,
) -> DeploymentConfig {
    DeploymentConfig {
        security: SecurityConfig::new(AuthScheme::HmacSha1, EncScheme::None),
        shared_facts: facts,
        sharding: Some(shard_map(partitions)),
        parallelism: workers,
        streaming,
        ..DeploymentConfig::default()
    }
}

fn build_sharded(
    partitions: usize,
    workers: usize,
    streaming: StreamingConfig,
    facts: Vec<(String, Tuple)>,
) -> Deployment {
    let specs: Vec<NodeSpec> = (0..partitions)
        .map(|i| NodeSpec::new(principal_name(i)))
        .collect();
    Deployment::build(
        SHARD_APP,
        &specs,
        sharded_config(partitions, workers, streaming, facts),
    )
    .unwrap()
}

/// The unsharded reference: one node holding every fact, serial, no
/// streaming.
fn reference_unions(facts: Vec<(String, Tuple)>) -> Vec<(String, Vec<Tuple>)> {
    let mut spec = NodeSpec::new(principal_name(0));
    spec.base_facts = facts;
    let config = DeploymentConfig {
        security: SecurityConfig::new(AuthScheme::HmacSha1, EncScheme::None),
        ..DeploymentConfig::default()
    };
    let mut deployment = Deployment::build(SHARD_APP, &[spec], config).unwrap();
    let report = deployment.run().unwrap();
    assert_eq!(report.rejected_batches, 0);
    assert_eq!(report.conflicting_batches, 0);
    unions(&deployment)
}

fn unions(deployment: &Deployment) -> Vec<(String, Vec<Tuple>)> {
    RELATIONS
        .iter()
        .map(|pred| (pred.to_string(), deployment.query_union(pred)))
        .collect()
}

fn fresh_dir(label: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sbx-shard-{label}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The tentpole equality: across partitions × workers × streaming, the union
/// of every relation matches the unsharded reference, the verdicts are
/// clean, and — at each fixed partitioning — the per-node Merkle roots are
/// identical across executor knobs.
#[test]
fn sharded_unions_match_unsharded_across_partitions_workers_streaming() {
    let reference = reference_unions(base_facts());
    assert!(
        reference.iter().all(|(_, tuples)| !tuples.is_empty()),
        "every relation in the scenario must be non-empty: {reference:?}"
    );

    for partitions in [1usize, 2, 4] {
        let mut roots_by_knobs: Vec<Vec<(String, String)>> = Vec::new();
        for workers in [1usize, 4] {
            for streaming in [
                StreamingConfig::disabled(),
                StreamingConfig::with_knobs(16, 64),
            ] {
                let dir = fresh_dir(&format!("grid-p{partitions}-w{workers}"));
                let mut config =
                    sharded_config(partitions, workers, streaming.clone(), base_facts());
                config.durability = Some(DurabilityConfig::new(&dir));
                let specs: Vec<NodeSpec> = (0..partitions)
                    .map(|i| NodeSpec::new(principal_name(i)))
                    .collect();
                let mut deployment = Deployment::build(SHARD_APP, &specs, config).unwrap();
                let report = deployment.run().unwrap();
                assert_eq!(report.rejected_batches, 0, "p={partitions} w={workers}");
                assert_eq!(report.conflicting_batches, 0, "p={partitions} w={workers}");
                assert_eq!(
                    unions(&deployment),
                    reference,
                    "unions diverged from the unsharded reference \
                     (partitions={partitions}, workers={workers}, \
                      streaming={})",
                    streaming.enabled
                );
                let shard_view = report.shard.expect("sharded run reports the shard plane");
                assert_eq!(shard_view.partitions, partitions);
                let placed: usize = shard_view
                    .per_partition_tuples
                    .iter()
                    .map(|(_, n)| *n)
                    .sum();
                assert_eq!(
                    placed,
                    distinct_sharded_count(),
                    "every sharded base tuple is placed exactly once"
                );
                roots_by_knobs.push(deployment.edb_roots().unwrap());
                let _ = std::fs::remove_dir_all(&dir);
            }
        }
        for roots in &roots_by_knobs[1..] {
            assert_eq!(
                roots, &roots_by_knobs[0],
                "per-node Merkle roots diverged across workers/streaming at partitions={partitions}"
            );
        }
    }
}

/// Runtime `ingest` routes every fact to its ring owner, and the resulting
/// evaluation matches an unsharded reference that started with the extended
/// fact set.
#[test]
fn ingest_routes_to_ring_owners_and_preserves_equality() {
    let extra: Vec<(String, Tuple)> = vec![
        ("edge".to_string(), vec![Value::Int(100), Value::Int(0)]),
        ("edge".to_string(), vec![Value::Int(3), Value::Int(100)]),
        ("weight".to_string(), vec![Value::Int(100), Value::Int(30)]),
    ];
    let mut all_facts = base_facts();
    all_facts.extend(extra.clone());
    let reference = reference_unions(all_facts);

    let mut deployment = build_sharded(4, 1, StreamingConfig::disabled(), base_facts());
    deployment.run().unwrap();
    deployment.ingest(extra.clone()).unwrap();
    deployment.run().unwrap();
    assert_eq!(unions(&deployment), reference);

    // Each ingested fact lives at exactly its ring owner.
    let ring = shard_map(4).ring();
    for (pred, tuple) in &extra {
        let owner = ring.owner_of(&tuple[0]).to_string();
        for i in 0..4 {
            let principal = principal_name(i);
            let held = deployment.query(&principal, pred).contains(tuple);
            assert_eq!(
                held,
                principal == owner,
                "{pred} {tuple:?} should live exactly at {owner}"
            );
        }
    }

    // Non-sharded relations are not ingestible — placement is the caller's.
    assert!(deployment
        .ingest(vec![("boost".to_string(), vec![Value::Int(70)])])
        .is_err());
}

/// Membership change: growing the group from 3 to 4 members moves only a
/// minority of the base tuples (consistent hashing), keeps the global
/// content digest unchanged, and leaves every tuple at exactly its new ring
/// owner.
#[test]
fn membership_change_repartitions_minimally_and_preserves_content() {
    let specs: Vec<NodeSpec> = (0..4).map(|i| NodeSpec::new(principal_name(i))).collect();
    let config = DeploymentConfig {
        security: SecurityConfig::new(AuthScheme::HmacSha1, EncScheme::None),
        shared_facts: base_facts(),
        sharding: Some(
            ShardMap::new((0..3).map(principal_name))
                .shard("edge", 0)
                .shard("weight", 0),
        ),
        ..DeploymentConfig::default()
    };
    let mut deployment = Deployment::build(SHARD_APP, &specs, config).unwrap();
    deployment.run().unwrap();
    let unions_before = unions(&deployment);
    let digest_before = deployment.shard_union_digest().unwrap();

    let new_map = ShardMap::new((0..4).map(principal_name))
        .shard("edge", 0)
        .shard("weight", 0);
    let outcome = deployment.apply_shard_map(new_map.clone()).unwrap();

    let total = outcome.moved_tuples + outcome.retained_tuples;
    assert_eq!(
        total,
        distinct_sharded_count(),
        "every sharded base tuple is accounted for"
    );
    assert!(outcome.moved_tuples > 0, "the new member must receive keys");
    assert!(
        outcome.moved_tuples * 2 < total,
        "consistent hashing moves a minority ({} of {total})",
        outcome.moved_tuples
    );
    assert_eq!(outcome.digest, digest_before);
    assert_eq!(unions(&deployment), unions_before);

    // Every base tuple now lives at exactly its new ring owner.
    let ring = new_map.ring();
    for pred in ["edge", "weight"] {
        for tuple in deployment.query_union(pred) {
            let owner = ring.owner_of(&tuple[0]).to_string();
            for i in 0..4 {
                let principal = principal_name(i);
                let held = deployment.query(&principal, pred).contains(&tuple);
                assert_eq!(
                    held,
                    principal == owner,
                    "{pred} {tuple:?} should live exactly at {owner} after re-partitioning"
                );
            }
        }
    }
}

/// A durable sharded deployment — including post-build ingests that crossed
/// the exchange plane — recovers from its WALs to the same unions and the
/// same Merkle roots the live deployment held.
#[test]
fn sharded_wal_recovery_replays_to_identical_state() {
    let dir = fresh_dir("recover");
    let specs: Vec<NodeSpec> = (0..3).map(|i| NodeSpec::new(principal_name(i))).collect();
    let make_config = || DeploymentConfig {
        security: SecurityConfig::new(AuthScheme::HmacSha1, EncScheme::None),
        shared_facts: base_facts(),
        sharding: Some(
            ShardMap::new((0..3).map(principal_name))
                .shard("edge", 0)
                .shard("weight", 0),
        ),
        durability: Some(DurabilityConfig::new(&dir)),
        streaming: StreamingConfig::with_knobs(8, 32),
        ..DeploymentConfig::default()
    };
    let mut live = Deployment::build(SHARD_APP, &specs, make_config()).unwrap();
    live.run().unwrap();
    live.ingest(vec![
        ("edge".to_string(), vec![Value::Int(200), Value::Int(1)]),
        ("weight".to_string(), vec![Value::Int(200), Value::Int(50)]),
    ])
    .unwrap();
    live.run().unwrap();
    let live_unions = unions(&live);
    let live_roots = live.edb_roots().unwrap();
    drop(live);

    let recovered = Deployment::recover(&dir, SHARD_APP, &specs, make_config()).unwrap();
    assert_eq!(unions(&recovered), live_unions);
    assert_eq!(recovered.edb_roots().unwrap(), live_roots);
    let _ = std::fs::remove_dir_all(&dir);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// On random edge/weight sets, 2-way sharded evaluation is
    /// union-identical to the unsharded reference.
    #[test]
    fn random_fact_sets_shard_without_changing_results(
        edges in proptest::collection::vec((0i64..10, 0i64..10), 5..30),
        weights in proptest::collection::vec((0i64..10, 0i64..6), 3..12),
    ) {
        let mut facts: Vec<(String, Tuple)> = Vec::new();
        for (a, b) in &edges {
            facts.push(("edge".to_string(), vec![Value::Int(*a), Value::Int(*b)]));
        }
        for (v, w) in &weights {
            facts.push(("weight".to_string(), vec![Value::Int(*v), Value::Int(*w * 10)]));
        }
        facts.push(("boost".to_string(), vec![Value::Int(10)]));
        let reference = reference_unions(facts.clone());
        let mut deployment = build_sharded(2, 1, StreamingConfig::disabled(), facts);
        deployment.run().unwrap();
        prop_assert_eq!(unions(&deployment), reference);
    }
}
