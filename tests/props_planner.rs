//! Property: planned + indexed evaluation computes exactly the fixpoint the
//! naive textual-order evaluator computes.
//!
//! Random programs (joins, recursion, comparisons, assignments, stratified
//! negation, aggregation) over random edge relations are evaluated twice —
//! once with the cost-based planner and secondary indexes (the default), once
//! with `EvalConfig::use_planner = false` (the pre-planner nested-loop
//! semantics) — and must produce identical relations *and* identical Merkle
//! commitments when the full database is logged into a `secureblox-store`
//! fact store.

use proptest::prelude::*;
use secureblox_datalog::{EvalConfig, Value, Workspace};
use secureblox_store::{derive_node_key, FactStore};
use std::path::PathBuf;

fn arb_edges() -> impl Strategy<Value = Vec<(u8, u8)>> {
    proptest::collection::vec(
        (any::<u8>(), any::<u8>()).prop_map(|(a, b)| (a % 8, b % 8)),
        0..28,
    )
}

/// Assemble a random-but-always-textually-valid program: comparisons appear
/// after the literals that bind their variables, negations after their
/// binders, so the naive evaluator never errors and equivalence is
/// meaningful.
fn build_program(
    cmp_kind: u8,
    with_negation: bool,
    with_agg: bool,
    with_triple: bool,
    with_frozen_negation: bool,
) -> String {
    let mut program = String::from(
        "tc(X, Y) <- e0(X, Y).\n\
         tc(X, Z) <- e0(X, Y), tc(Y, Z).\n",
    );
    let cmp_tail = match cmp_kind % 4 {
        0 => "",
        1 => ", X != Z",
        2 => ", X <= Z",
        _ => ", X < 6",
    };
    program.push_str(&format!("join1(X, Z) <- e0(X, Y), e1(Y, Z){cmp_tail}.\n"));
    // Assignment comparison: textual order binds Y first, then assigns C.
    program.push_str("shift(X, C) <- e0(X, Y), C = Y + 1.\n");
    if with_triple {
        program.push_str("join2(X, W) <- e0(X, Y), e1(Y, Z), e0(Z, W).\n");
    }
    if with_negation {
        program.push_str("filt(X, Y) <- join1(X, Y), !e1(X, Y).\n");
    }
    if with_frozen_negation {
        // Z is textually unbound at the negation (∄ e1(Y, _)) and only
        // assigned afterwards — the planner must not hoist the assignment.
        program.push_str("orphan(X) <- e0(X, Y), !e1(Y, Z), Z = 6.\n");
        // Same frozen variable, but consumed by a literal that is recursive
        // with the head — exercising the semi-naïve delta-pinning path.
        program.push_str(
            "reachm(X) <- e0(X, X).\n\
             reachm(Z) <- mutual(Z).\n\
             mutual(X) <- e0(X, Y), !e1(X, Z), reachm(Z).\n",
        );
    }
    if with_agg {
        program.push_str("total[X] = S <- agg<< S = sum(Y) >> e0(X, Y).\n");
    }
    program
}

fn run_workspace(program: &str, e0: &[(u8, u8)], e1: &[(u8, u8)], use_planner: bool) -> Workspace {
    let mut ws = Workspace::with_config(EvalConfig {
        use_planner,
        ..EvalConfig::default()
    });
    ws.install_source(program).unwrap();
    for (pred, edges) in [("e0", e0), ("e1", e1)] {
        for (a, b) in edges {
            ws.assert_fact(pred, vec![Value::Int(*a as i64), Value::Int(*b as i64)])
                .unwrap();
        }
    }
    ws.fixpoint().unwrap();
    ws
}

/// Merkle-commit every relation of the workspace (EDB and derived alike)
/// through the durable store's commitment machinery and return the root.
fn merkle_root(ws: &Workspace, tag: &str) -> String {
    let dir: PathBuf =
        std::env::temp_dir().join(format!("sbx-props-planner-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let key = derive_node_key(1, "props");
    let mut store = FactStore::open(&dir, &key).unwrap();
    for pred in ws.predicate_names() {
        let tuples = ws.query(&pred);
        store
            .log_inserts(tuples.iter().map(|t| (pred.as_str(), t)), 1)
            .unwrap();
    }
    let root = store.base_root_hex();
    drop(store);
    let _ = std::fs::remove_dir_all(&dir);
    root
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]
    #[test]
    fn planned_fixpoint_equals_naive_fixpoint(
        e0 in arb_edges(),
        e1 in arb_edges(),
        cmp_kind in any::<u8>(),
        with_negation in any::<bool>(),
        with_agg in any::<bool>(),
        with_triple in any::<bool>(),
        with_frozen_negation in any::<bool>(),
    ) {
        let program = build_program(
            cmp_kind,
            with_negation,
            with_agg,
            with_triple,
            with_frozen_negation,
        );
        let planned = run_workspace(&program, &e0, &e1, true);
        let naive = run_workspace(&program, &e0, &e1, false);

        prop_assert_eq!(planned.predicate_names(), naive.predicate_names());
        for pred in planned.predicate_names() {
            prop_assert!(
                planned.query(&pred) == naive.query(&pred),
                "relation {} diverged under program:\n{}",
                pred,
                program
            );
        }
        prop_assert_eq!(
            merkle_root(&planned, "planned"),
            merkle_root(&naive, "naive")
        );
    }
}
