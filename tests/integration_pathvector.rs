//! End-to-end integration test of the path-vector routing protocol (paper
//! §7.1) across the full stack: parser → BloxGenerics → datalog engine →
//! crypto → simulated network.

use secureblox::apps::pathvector::{self, PathVectorConfig};
use secureblox::policy::SecurityConfig;
use secureblox::runtime::ReactorConfig;
use secureblox::{AuthScheme, EncScheme};

fn run(nodes: usize, auth: AuthScheme, enc: EncScheme) -> pathvector::PathVectorOutcome {
    let config = PathVectorConfig {
        num_nodes: nodes,
        security: SecurityConfig::new(auth, enc),
        seed: 3,
        ..PathVectorConfig::default()
    };
    pathvector::run(&config).expect("path-vector run failed")
}

/// Like [`run`] but pinned to the deterministic reference executor: the
/// byte/latency *comparisons* below reproduce the paper's figure orderings,
/// and wire-byte totals under streaming coalescing depend on envelope
/// boundaries — a property of the deterministic schedule, not of the
/// reactor's arbitrary cross-link interleavings.
fn run_reference(nodes: usize, auth: AuthScheme, enc: EncScheme) -> pathvector::PathVectorOutcome {
    let config = PathVectorConfig {
        num_nodes: nodes,
        security: SecurityConfig::new(auth, enc),
        seed: 3,
        reactor: ReactorConfig::disabled(),
        ..PathVectorConfig::default()
    };
    pathvector::run(&config).expect("path-vector run failed")
}

#[test]
fn protocol_converges_under_every_scheme() {
    for (auth, enc) in [
        (AuthScheme::NoAuth, EncScheme::None),
        (AuthScheme::HmacSha1, EncScheme::None),
        (AuthScheme::Rsa, EncScheme::Aes128),
    ] {
        let outcome = run(6, auth, enc);
        assert_eq!(
            outcome.nodes_with_route_to_zero, 5,
            "{auth:?}/{enc:?}: {outcome:?}"
        );
        assert_eq!(outcome.report.rejected_batches, 0, "{auth:?}/{enc:?}");
        // All-pairs routes: every node should know a best cost to every other
        // node in a connected graph.
        assert!(
            outcome.best_cost_entries >= 6 * 5,
            "{auth:?}/{enc:?}: {outcome:?}"
        );
    }
}

#[test]
fn stronger_authentication_costs_more_bandwidth_and_latency() {
    let noauth = run_reference(6, AuthScheme::NoAuth, EncScheme::None);
    let hmac = run_reference(6, AuthScheme::HmacSha1, EncScheme::None);
    let rsa = run_reference(6, AuthScheme::Rsa, EncScheme::None);
    // Figure 6's ordering: per-node KB grows with signature size.
    assert!(noauth.report.per_node_kb < hmac.report.per_node_kb);
    assert!(hmac.report.per_node_kb < rsa.report.per_node_kb);
    // Figure 4's ordering: RSA signing/verification dominates compute, so its
    // fixpoint latency exceeds NoAuth's.
    assert!(rsa.report.fixpoint_latency > noauth.report.fixpoint_latency);
    assert!(rsa.report.average_transaction > noauth.report.average_transaction);
}

#[test]
fn encryption_adds_bytes_on_top_of_authentication() {
    let plain = run_reference(6, AuthScheme::HmacSha1, EncScheme::None);
    let encrypted = run_reference(6, AuthScheme::HmacSha1, EncScheme::Aes128);
    assert!(encrypted.report.per_node_kb > plain.report.per_node_kb);
    assert_eq!(encrypted.report.rejected_batches, 0);
}

#[test]
fn larger_networks_take_longer_and_ship_more_data() {
    let small = run_reference(6, AuthScheme::NoAuth, EncScheme::None);
    let large = run_reference(12, AuthScheme::NoAuth, EncScheme::None);
    assert!(large.report.fixpoint_latency > small.report.fixpoint_latency);
    assert!(large.report.per_node_kb > small.report.per_node_kb);
    assert_eq!(large.nodes_with_route_to_zero, 11);
}

#[test]
fn convergence_cdf_is_step_shaped_and_complete() {
    let outcome = run(9, AuthScheme::NoAuth, EncScheme::None);
    let cdf = outcome.report.convergence_cdf(20);
    assert_eq!(cdf.last().unwrap().1, 1.0);
    for window in cdf.windows(2) {
        assert!(window[1].1 >= window[0].1, "CDF must be monotone");
    }
}
