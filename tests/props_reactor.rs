//! The reactor executor is outcome-equivalent to the virtual-time reference
//! loop: wall-clock-parallel node tasks woken by message arrival must leave
//! every deployment in exactly the state the deterministic reference
//! executor produces — the same relations, the same constraint verdicts,
//! the same store Merkle roots.  What the reactor changes is *scheduling*
//! (cross-link message interleavings, wall-clock parallelism); what it must
//! never change is what the receivers end up knowing.
//!
//! Two comparison regimes, matching `props_streaming.rs`:
//!
//! * the deterministic REACH app (no existentials, no FD races) is compared
//!   **bit-for-bit** — relations, verdict counters, EDB Merkle roots —
//!   across worker counts {1, 4}, reactor threads {1, 4}, streaming on/off,
//!   and the durable recovery path;
//! * random path-vector topologies are compared at **outcome** level
//!   (routes found, bestcost entries, rejected batches): virtual time
//!   advances by measured wall-clock compute, so message/transaction counts
//!   legitimately differ between any two runs of the same scenario.

use proptest::prelude::*;
use secureblox::apps::pathvector;
use secureblox::policy::SecurityConfig;
use secureblox::runtime::{Deployment, DeploymentConfig, NodeSpec, ReactorConfig, StreamingConfig};
use secureblox::{AuthScheme, DurabilityConfig, EncScheme, Value};
use secureblox_datalog::codec::serialize_tuple;
use secureblox_datalog::value::Tuple;
use std::path::{Path, PathBuf};

// ---------------------------------------------------------------------------
// Deterministic REACH app (same shape as props_streaming.rs): bit-identical
// ---------------------------------------------------------------------------

const REACH_APP: &str = r#"
    link(N1, N2) -> node(N1), node(N2).
    remote_link(N1, N2) -> node(N1), node(N2).
    reach(N1, N2) -> node(N1), node(N2).
    exportable(`remote_link).

    says[`remote_link](self[], U, X, Y) <- link(X, Y), principal(U), U != self[].
    reach(X, Y) <- link(X, Y).
    reach(X, Y) <- remote_link(X, Y).
    reach(X, Z) <- reach(X, Y), reach(Y, Z).
"#;

fn line_specs() -> Vec<NodeSpec> {
    vec![
        NodeSpec {
            principal: "n0".into(),
            base_facts: vec![("link".into(), vec![Value::str("n0"), Value::str("n1")])],
        },
        NodeSpec {
            principal: "n1".into(),
            base_facts: vec![("link".into(), vec![Value::str("n1"), Value::str("n2")])],
        },
        NodeSpec {
            principal: "n2".into(),
            base_facts: vec![],
        },
    ]
}

fn durable_config(
    dir: &Path,
    reactor: ReactorConfig,
    streaming: StreamingConfig,
    parallelism: usize,
) -> DeploymentConfig {
    DeploymentConfig {
        security: SecurityConfig::new(AuthScheme::HmacSha1, EncScheme::None),
        durability: Some(DurabilityConfig::new(dir)),
        reactor,
        streaming,
        parallelism,
        ..DeploymentConfig::default()
    }
}

fn fresh_dir(label: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sbx-reactor-{label}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn sorted(mut tuples: Vec<Tuple>) -> Vec<Tuple> {
    tuples.sort_by_key(|t| serialize_tuple(t));
    tuples
}

fn all_queries(deployment: &Deployment) -> Vec<(String, String, Vec<Tuple>)> {
    let mut out = Vec::new();
    for principal in ["n0", "n1", "n2"] {
        for pred in ["link", "remote_link", "reach", "says$remote_link"] {
            out.push((
                principal.to_string(),
                pred.to_string(),
                sorted(deployment.query(principal, pred)),
            ));
        }
    }
    out
}

type Snapshot = (
    Vec<(String, String, Vec<Tuple>)>,
    (usize, usize, usize),
    Vec<(String, String)>,
);

fn snapshot(deployment: &Deployment, verdicts: (usize, usize, usize)) -> Snapshot {
    (
        all_queries(deployment),
        verdicts,
        deployment.edb_roots().unwrap(),
    )
}

/// One full durable scenario: build, run to fixpoint, retract a link (so the
/// DRed/WAL retract path executes under the reactor), run to re-convergence.
fn run_durable_scenario(
    dir: &Path,
    reactor: ReactorConfig,
    streaming: StreamingConfig,
    parallelism: usize,
) -> (Snapshot, Deployment) {
    let mut deployment = Deployment::build(
        REACH_APP,
        &line_specs(),
        durable_config(dir, reactor, streaming, parallelism),
    )
    .unwrap();
    let first = deployment.run().unwrap();
    deployment
        .retract(
            "n1",
            vec![("link".into(), vec![Value::str("n1"), Value::str("n2")])],
        )
        .unwrap();
    let second = deployment.run().unwrap();
    let verdicts = (
        first.rejected_batches + second.rejected_batches,
        first.conflicting_batches + second.conflicting_batches,
        first.retractions_applied + second.retractions_applied,
    );
    let snap = snapshot(&deployment, verdicts);
    (snap, deployment)
}

/// Reactor-mode delivery is bit-identical to the reference loop on a
/// deterministic app: relations, verdicts, and Merkle roots all match, for
/// serial and parallel fixpoints, 1 and 4 reactor threads, and with the
/// streaming scheduler both off (per-envelope) and on (coalescing + credit).
#[test]
fn reactor_durable_run_matches_reference_bit_for_bit() {
    for parallelism in [1usize, 4] {
        for streaming in [
            StreamingConfig::disabled(),
            StreamingConfig::with_knobs(4, 8),
        ] {
            let label = format!("base-w{parallelism}-s{}", streaming.enabled as u8);
            let base_dir = fresh_dir(&label);
            let (baseline, _) = run_durable_scenario(
                &base_dir,
                ReactorConfig::disabled(),
                streaming.clone(),
                parallelism,
            );
            let _ = std::fs::remove_dir_all(&base_dir);

            for threads in [1usize, 4] {
                let dir = fresh_dir(&format!(
                    "r{threads}-w{parallelism}-s{}",
                    streaming.enabled as u8
                ));
                let (reactor, _) = run_durable_scenario(
                    &dir,
                    ReactorConfig::with_threads(threads),
                    streaming.clone(),
                    parallelism,
                );
                let _ = std::fs::remove_dir_all(&dir);
                assert_eq!(
                    reactor.0, baseline.0,
                    "relations diverged (threads={threads}, workers={parallelism}, streaming={})",
                    streaming.enabled
                );
                assert_eq!(
                    reactor.1, baseline.1,
                    "constraint verdicts diverged (threads={threads}, workers={parallelism}, streaming={})",
                    streaming.enabled
                );
                assert_eq!(
                    reactor.2, baseline.2,
                    "store Merkle roots diverged (threads={threads}, workers={parallelism}, streaming={})",
                    streaming.enabled
                );
            }
        }
    }
}

/// A reactor-mode WAL replays faithfully: recovery re-applies the logged
/// record groups as the original transactions, landing on the same relations
/// and Merkle roots the live reactor-mode deployment held.
#[test]
fn recovery_replays_a_reactor_mode_wal() {
    let streaming = StreamingConfig::with_knobs(8, 32);
    let dir = fresh_dir("recover");
    let (live, deployment) =
        run_durable_scenario(&dir, ReactorConfig::with_threads(4), streaming.clone(), 1);
    drop(deployment);

    let recovered = Deployment::recover(
        &dir,
        REACH_APP,
        &line_specs(),
        durable_config(&dir, ReactorConfig::disabled(), streaming, 1),
    )
    .unwrap();
    assert_eq!(
        all_queries(&recovered),
        live.0,
        "recovered relations diverged from the live reactor deployment"
    );
    assert_eq!(
        recovered.edb_roots().unwrap(),
        live.2,
        "recovered Merkle roots diverged from the live reactor deployment"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// Path-vector protocol on random topologies: outcome-identical
// ---------------------------------------------------------------------------

/// Build and run a path-vector deployment under an explicit executor and
/// streaming choice, reporting protocol outcome only.
fn run_pathvector(
    num_nodes: usize,
    seed: u64,
    reactor: ReactorConfig,
    streaming: StreamingConfig,
) -> (usize, usize, usize) {
    let edges = pathvector::random_graph(num_nodes, 3, seed);
    let specs = pathvector::node_specs(num_nodes, &edges);
    let config = DeploymentConfig {
        security: SecurityConfig::new(AuthScheme::HmacSha1, EncScheme::None),
        seed,
        allow_recursive_negation: true,
        reactor,
        streaming,
        ..DeploymentConfig::default()
    };
    let mut deployment = Deployment::build(&pathvector::app_source(), &specs, config).unwrap();
    let report = deployment.run().unwrap();
    let mut best_cost_entries = 0usize;
    let mut nodes_with_route_to_zero = 0usize;
    for i in 0..num_nodes {
        let principal = pathvector::principal_name(i);
        let best = deployment.query(&principal, "bestcost");
        best_cost_entries += best.len();
        if i != 0
            && best.iter().any(|t| {
                t.get(1).and_then(|v| v.as_str()) == Some(pathvector::principal_name(0).as_str())
            })
        {
            nodes_with_route_to_zero += 1;
        }
    }
    (
        nodes_with_route_to_zero,
        best_cost_entries,
        report.rejected_batches,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// On any random topology the protocol *outcome* — routes found, join
    /// entries, policy verdicts — is identical whether nodes take turns in
    /// the virtual-time loop or run wall-clock-parallel as reactor tasks,
    /// with the streaming scheduler both off and on.  Scheduling counters
    /// (total transactions / messages) are deliberately not compared:
    /// virtual time advances by measured wall-clock compute, so duplicate
    /// re-send counts vary between any two runs of the same scenario.
    #[test]
    fn pathvector_outcome_is_independent_of_the_executor(num_nodes in 4usize..7,
                                                         seed in 0u64..1000) {
        for streaming in [StreamingConfig::disabled(), StreamingConfig::with_knobs(16, 64)] {
            let reference = run_pathvector(
                num_nodes, seed, ReactorConfig::disabled(), streaming.clone());
            let reactor = run_pathvector(
                num_nodes, seed, ReactorConfig::with_threads(4), streaming);
            prop_assert_eq!(reactor.0, reference.0);
            prop_assert_eq!(reactor.1, reference.1);
            prop_assert_eq!(reactor.2, reference.2);
        }
    }
}
