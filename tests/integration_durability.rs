//! End-to-end durability: run a secured deployment to fixpoint, checkpoint,
//! drop it, recover from disk, and get the same query results and the same
//! per-node Merkle roots back; detect tampering as typed errors; serve
//! identical queries from a synced read replica.

use secureblox::policy::SecurityConfig;
use secureblox::runtime::{Deployment, DeploymentConfig, DurabilityError, NodeSpec};
use secureblox::{AuthScheme, DurabilityConfig, EncScheme, StoreError, Value};
use secureblox_datalog::codec::serialize_tuple;
use secureblox_datalog::value::Tuple;
use secureblox_store::{derive_node_key, sync_deployment, FactStore, WalOp};
use std::path::{Path, PathBuf};

/// A three-node gossip + transitive-reachability app: every node exports its
/// links, imports remote ones, and derives `reach` recursively, so recovery
/// has both EDB (imported says facts) and genuinely derived IDB to rebuild.
const REACH_APP: &str = r#"
    link(N1, N2) -> node(N1), node(N2).
    remote_link(N1, N2) -> node(N1), node(N2).
    reach(N1, N2) -> node(N1), node(N2).
    exportable(`remote_link).

    says[`remote_link](self[], U, X, Y) <- link(X, Y), principal(U), U != self[].
    reach(X, Y) <- link(X, Y).
    reach(X, Y) <- remote_link(X, Y).
    reach(X, Z) <- reach(X, Y), reach(Y, Z).
"#;

fn line_specs() -> Vec<NodeSpec> {
    vec![
        NodeSpec {
            principal: "n0".into(),
            base_facts: vec![("link".into(), vec![Value::str("n0"), Value::str("n1")])],
        },
        NodeSpec {
            principal: "n1".into(),
            base_facts: vec![("link".into(), vec![Value::str("n1"), Value::str("n2")])],
        },
        NodeSpec {
            principal: "n2".into(),
            base_facts: vec![],
        },
    ]
}

fn durable_config(dir: &Path) -> DeploymentConfig {
    DeploymentConfig {
        security: SecurityConfig::new(AuthScheme::HmacSha1, EncScheme::None),
        durability: Some(DurabilityConfig::new(dir)),
        ..DeploymentConfig::default()
    }
}

fn fresh_dir(label: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sbx-e2e-{label}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn sorted(mut tuples: Vec<Tuple>) -> Vec<Tuple> {
    tuples.sort_by_key(|t| serialize_tuple(t));
    tuples
}

fn all_queries(deployment: &Deployment) -> Vec<(String, String, Vec<Tuple>)> {
    let mut out = Vec::new();
    for principal in ["n0", "n1", "n2"] {
        for pred in ["link", "remote_link", "reach", "says$remote_link"] {
            out.push((
                principal.to_string(),
                pred.to_string(),
                sorted(deployment.query(principal, pred)),
            ));
        }
    }
    out
}

#[test]
fn checkpoint_recover_same_fixpoint_and_roots() {
    let dir = fresh_dir("roundtrip");
    let mut deployment = Deployment::build(REACH_APP, &line_specs(), durable_config(&dir)).unwrap();
    let report = deployment.run().unwrap();
    assert_eq!(report.rejected_batches, 0);
    // Reachability converged across all three nodes: n0 reaches n2.
    assert!(deployment
        .query("n0", "reach")
        .contains(&vec![Value::str("n0"), Value::str("n2")]));

    let queries = all_queries(&deployment);
    let checkpoints = deployment.checkpoint().unwrap();
    assert_eq!(checkpoints.len(), 3);
    drop(deployment);

    let recovered =
        Deployment::recover(&dir, REACH_APP, &line_specs(), durable_config(&dir)).unwrap();
    assert_eq!(
        all_queries(&recovered),
        queries,
        "recovered fixpoint differs"
    );
    let roots = recovered.edb_roots().unwrap();
    for (checkpoint, (principal, root)) in checkpoints.iter().zip(&roots) {
        assert_eq!(&checkpoint.principal, principal);
        assert_eq!(
            &checkpoint.root, root,
            "Merkle root differs for {principal}"
        );
    }
    // A fresh checkpoint of the recovered deployment commits to the same
    // roots — recovery is a fixpoint of itself.
    let mut recovered = recovered;
    let again = recovered.checkpoint().unwrap();
    for (a, b) in checkpoints.iter().zip(&again) {
        assert_eq!(a.root, b.root);
    }
}

#[test]
fn wal_only_recovery_without_any_checkpoint() {
    let dir = fresh_dir("walonly");
    let mut deployment = Deployment::build(REACH_APP, &line_specs(), durable_config(&dir)).unwrap();
    deployment.run().unwrap();
    let queries = all_queries(&deployment);
    let roots = deployment.edb_roots().unwrap();
    drop(deployment);

    let recovered =
        Deployment::recover(&dir, REACH_APP, &line_specs(), durable_config(&dir)).unwrap();
    assert_eq!(all_queries(&recovered), queries);
    assert_eq!(recovered.edb_roots().unwrap(), roots);
}

#[test]
fn retraction_is_durable() {
    let dir = fresh_dir("retract");
    let mut deployment = Deployment::build(REACH_APP, &line_specs(), durable_config(&dir)).unwrap();
    deployment.run().unwrap();
    // n1 withdraws its link to n2 locally; DRed removes the derived reach.
    deployment
        .retract(
            "n1",
            vec![("link".into(), vec![Value::str("n1"), Value::str("n2")])],
        )
        .unwrap();
    assert!(!deployment
        .query("n1", "reach")
        .contains(&vec![Value::str("n1"), Value::str("n2")]));
    let queries = all_queries(&deployment);
    drop(deployment);

    let mut recovered =
        Deployment::recover(&dir, REACH_APP, &line_specs(), durable_config(&dir)).unwrap();
    assert_eq!(all_queries(&recovered), queries);
    assert!(!recovered
        .query("n1", "reach")
        .contains(&vec![Value::str("n1"), Value::str("n2")]));

    // The recovered deployment keeps appending to the same WAL chain: a
    // further retraction survives a second crash/recover cycle.
    recovered
        .retract(
            "n0",
            vec![("link".into(), vec![Value::str("n0"), Value::str("n1")])],
        )
        .unwrap();
    let queries = all_queries(&recovered);
    drop(recovered);
    let again = Deployment::recover(&dir, REACH_APP, &line_specs(), durable_config(&dir)).unwrap();
    assert_eq!(all_queries(&again), queries);
    assert!(again.query("n0", "link").is_empty());
}

#[test]
fn in_flight_retraction_withdrawal_is_resent_after_crash() {
    let dir = fresh_dir("inflightretract");
    let mut deployment = Deployment::build(REACH_APP, &line_specs(), durable_config(&dir)).unwrap();
    deployment.run().unwrap();
    assert!(deployment
        .query("n0", "remote_link")
        .contains(&vec![Value::str("n1"), Value::str("n2")]));
    drop(deployment);

    // Simulate a crash inside `retract`: n1's local retraction reached its
    // WAL, but the node died before the withdrawal messages were flushed to
    // its peers.  The export-cursor records from the earlier run are still
    // in the log, so recovery knows the exports are now orphaned.
    let key = derive_node_key(1, "n1");
    let mut store = FactStore::open(dir.join("n1"), &key).unwrap();
    let link = vec![Value::str("n1"), Value::str("n2")];
    let watermark = store.watermark() + 1;
    store.log_retracts([("link", &link)], watermark).unwrap();
    drop(store);

    let mut recovered =
        Deployment::recover(&dir, REACH_APP, &line_specs(), durable_config(&dir)).unwrap();
    // n1's own fixpoint already reflects the replayed retraction ...
    assert!(!recovered.query("n1", "link").contains(&link));
    // ... but the peers still hold the imported copy until the withdrawal
    // is re-sent.
    assert!(recovered
        .query("n0", "remote_link")
        .contains(&vec![Value::str("n1"), Value::str("n2")]));

    let report = recovered.run().unwrap();
    assert_eq!(report.rejected_batches, 0);
    for principal in ["n0", "n2"] {
        assert!(
            !recovered
                .query(principal, "remote_link")
                .contains(&vec![Value::str("n1"), Value::str("n2")]),
            "{principal} must drop the withdrawn remote link"
        );
    }
    assert!(!recovered
        .query("n0", "reach")
        .contains(&vec![Value::str("n0"), Value::str("n2")]));

    // The resend discharged the cursor entries: another crash/recover cycle
    // owes nothing and converges to the same answers.
    let queries = all_queries(&recovered);
    drop(recovered);
    let mut again =
        Deployment::recover(&dir, REACH_APP, &line_specs(), durable_config(&dir)).unwrap();
    again.run().unwrap();
    assert_eq!(all_queries(&again), queries);
}

#[test]
fn run_after_recovery_is_idempotent() {
    // Recovery leaves the outbox dedup set empty (at-least-once export), so
    // a run() after recovery re-ships and every receiver must absorb the
    // duplicates without changing its answers or rejecting batches.
    let dir = fresh_dir("rerun");
    let mut deployment = Deployment::build(REACH_APP, &line_specs(), durable_config(&dir)).unwrap();
    deployment.run().unwrap();
    let queries = all_queries(&deployment);
    let roots = deployment.edb_roots().unwrap();
    drop(deployment);

    let mut recovered =
        Deployment::recover(&dir, REACH_APP, &line_specs(), durable_config(&dir)).unwrap();
    let report = recovered.run().unwrap();
    assert_eq!(report.rejected_batches, 0);
    assert_eq!(all_queries(&recovered), queries);
    assert_eq!(recovered.edb_roots().unwrap(), roots);
}

#[test]
fn crash_before_first_run_keeps_bootstrap_facts() {
    // A deployment that died between build and run has empty stores; the
    // recovered deployment must still be able to run the protocol from its
    // bootstrap facts rather than silently converging to nothing.
    let dir = fresh_dir("prerun");
    let deployment = Deployment::build(REACH_APP, &line_specs(), durable_config(&dir)).unwrap();
    drop(deployment);

    let mut recovered =
        Deployment::recover(&dir, REACH_APP, &line_specs(), durable_config(&dir)).unwrap();
    recovered.run().unwrap();
    assert!(recovered
        .query("n0", "reach")
        .contains(&vec![Value::str("n0"), Value::str("n2")]));

    // And the state it built is durable in turn.
    let queries = all_queries(&recovered);
    drop(recovered);
    let again = Deployment::recover(&dir, REACH_APP, &line_specs(), durable_config(&dir)).unwrap();
    assert_eq!(all_queries(&again), queries);
}

#[test]
fn checkpoint_compacts_wal_and_recovery_is_equivalent() {
    // The WAL is truncated once a checkpoint has made its history redundant;
    // recovery from snapshot + (empty) suffix must still answer identically
    // and keep appending durably afterwards.
    let dir = fresh_dir("compactwal");
    let mut deployment = Deployment::build(REACH_APP, &line_specs(), durable_config(&dir)).unwrap();
    deployment.run().unwrap();
    let queries = all_queries(&deployment);
    let roots = deployment.edb_roots().unwrap();
    deployment.checkpoint().unwrap();
    drop(deployment);

    // Checkpointing drops every base-fact record (the snapshot supersedes
    // them); only re-logged export-cursor marks survive the compaction.
    for principal in ["n0", "n1", "n2"] {
        let store = FactStore::open(dir.join(principal), &derive_node_key(1, principal)).unwrap();
        assert!(
            store
                .recovered_suffix()
                .iter()
                .all(|record| record.op == WalOp::ExportMark),
            "{principal}'s compacted WAL must hold only export-cursor marks"
        );
    }

    let mut recovered =
        Deployment::recover(&dir, REACH_APP, &line_specs(), durable_config(&dir)).unwrap();
    assert_eq!(all_queries(&recovered), queries);
    assert_eq!(recovered.edb_roots().unwrap(), roots);

    // Post-compaction retractions land in the fresh WAL suffix and survive
    // another crash/recover cycle.
    recovered
        .retract(
            "n1",
            vec![("link".into(), vec![Value::str("n1"), Value::str("n2")])],
        )
        .unwrap();
    let queries = all_queries(&recovered);
    drop(recovered);
    let again = Deployment::recover(&dir, REACH_APP, &line_specs(), durable_config(&dir)).unwrap();
    assert_eq!(all_queries(&again), queries);
}

#[test]
fn tampered_wal_record_is_a_typed_error() {
    // No checkpoint here: checkpointing compacts the log, so the un-snapshot
    // WAL is where tampering is meaningful.
    let dir = fresh_dir("tamperwal");
    let mut deployment = Deployment::build(REACH_APP, &line_specs(), durable_config(&dir)).unwrap();
    deployment.run().unwrap();
    drop(deployment);

    let wal_path = dir.join("n0").join("wal.log");
    let mut bytes = std::fs::read(&wal_path).unwrap();
    assert!(!bytes.is_empty());
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x01;
    std::fs::write(&wal_path, &bytes).unwrap();

    match Deployment::recover(&dir, REACH_APP, &line_specs(), durable_config(&dir)) {
        Err(DurabilityError::Store(StoreError::TamperedRecord { .. })) => {}
        Err(other) => panic!("expected typed WAL tamper detection, got {other}"),
        Ok(_) => panic!("tampered WAL recovered successfully"),
    }
}

#[test]
fn tampered_snapshot_object_is_a_typed_error() {
    let dir = fresh_dir("tampersnap");
    let mut deployment = Deployment::build(REACH_APP, &line_specs(), durable_config(&dir)).unwrap();
    deployment.run().unwrap();
    deployment.checkpoint().unwrap();
    drop(deployment);
    // Snapshot recovery must not depend on the WAL: remove it so the flipped
    // object is what recovery actually reads.
    std::fs::remove_file(dir.join("n1").join("wal.log")).unwrap();

    let objects_dir = dir.join("n1").join("objects");
    let object = std::fs::read_dir(&objects_dir)
        .unwrap()
        .map(|entry| entry.unwrap().path())
        .max_by_key(|path| std::fs::metadata(path).unwrap().len())
        .unwrap();
    let mut bytes = std::fs::read(&object).unwrap();
    let last = bytes.len() - 1;
    bytes[last] ^= 0x80;
    std::fs::write(&object, &bytes).unwrap();

    match Deployment::recover(&dir, REACH_APP, &line_specs(), durable_config(&dir)) {
        Err(DurabilityError::Store(
            StoreError::ObjectMismatch { .. } | StoreError::RootMismatch { .. },
        )) => {}
        Err(other) => panic!("expected typed snapshot tamper detection, got {other}"),
        Ok(_) => panic!("tampered snapshot recovered successfully"),
    }
}

#[test]
fn synced_replica_answers_identical_queries() {
    let master_dir = fresh_dir("syncmaster");
    let replica_dir = fresh_dir("syncreplica");
    let mut master =
        Deployment::build(REACH_APP, &line_specs(), durable_config(&master_dir)).unwrap();
    master.run().unwrap();
    let checkpoints = master.checkpoint().unwrap();
    let queries = all_queries(&master);

    let stats = sync_deployment(&master_dir, &replica_dir, 1).unwrap();
    assert_eq!(stats.len(), 3);
    assert!(stats.iter().all(|(_, s)| s.copied > 0));

    let replica = Deployment::recover(
        &replica_dir,
        REACH_APP,
        &line_specs(),
        durable_config(&replica_dir),
    )
    .unwrap();
    assert_eq!(all_queries(&replica), queries);
    let roots = replica.edb_roots().unwrap();
    for (checkpoint, (principal, root)) in checkpoints.iter().zip(&roots) {
        assert_eq!(&checkpoint.principal, principal);
        assert_eq!(&checkpoint.root, root);
    }

    // Re-sync after nothing changed copies zero objects (content addressing
    // makes replication incremental for free).
    let again = sync_deployment(&master_dir, &replica_dir, 1).unwrap();
    assert!(again.iter().all(|(_, s)| s.copied == 0));
}

#[test]
fn multi_replica_fanout_ships_suffixes_with_independent_cursors() {
    // Two replicas registered at different times: the early one catches up
    // incrementally (WAL suffix only), the late one transfers everything,
    // and both recover to deployments answering the master's queries.
    let master_dir = fresh_dir("fanout-master");
    let r1_dir = fresh_dir("fanout-r1");
    let r2_dir = fresh_dir("fanout-r2");
    let mut master =
        Deployment::build(REACH_APP, &line_specs(), durable_config(&master_dir)).unwrap();
    master.run().unwrap();

    master.add_replica("r1", &r1_dir).unwrap();
    let first = master.sync_replicas().unwrap();
    assert_eq!(first.len(), 1);
    let r1_initial: usize = first[0].nodes.iter().map(|(_, s)| s.wal_records).sum();
    assert!(r1_initial > 0, "initial catch-up ships the WAL: {first:?}");

    // Cursors track each node's WAL head.
    let cursors = master.replica_cursors("r1").unwrap().clone();
    assert_eq!(cursors.len(), 3);
    assert!(cursors.values().all(|&seq| seq > 0));

    // Mutate the master (a distributed retraction reaches every node's WAL),
    // then register the second replica and fan out.
    master
        .retract(
            "n1",
            vec![("link".into(), vec![Value::str("n1"), Value::str("n2")])],
        )
        .unwrap();
    master.run().unwrap();
    master.add_replica("r2", &r2_dir).unwrap();
    let second = master.sync_replicas().unwrap();
    assert_eq!(second.len(), 2);
    let r1_suffix: usize = second[0].nodes.iter().map(|(_, s)| s.wal_records).sum();
    let r2_full: usize = second[1].nodes.iter().map(|(_, s)| s.wal_records).sum();
    assert!(r1_suffix > 0, "{second:?}");
    assert!(
        r2_full > r1_suffix,
        "late replica must transfer more than the early one's suffix: {second:?}"
    );

    // A third pass with an unchanged master touches no replica disk.
    let third = master.sync_replicas().unwrap();
    for report in &third {
        assert!(report.nodes.is_empty(), "{third:?}");
        assert_eq!(report.up_to_date, 3, "{third:?}");
    }

    // Both replicas recover to the master's exact answers.
    let queries = all_queries(&master);
    let roots = master.edb_roots().unwrap();
    for dir in [&r1_dir, &r2_dir] {
        let replica =
            Deployment::recover(dir, REACH_APP, &line_specs(), durable_config(dir)).unwrap();
        assert_eq!(all_queries(&replica), queries);
        assert_eq!(replica.edb_roots().unwrap(), roots);
    }
}

#[test]
fn replica_sync_without_durability_is_typed() {
    let config = DeploymentConfig {
        security: SecurityConfig::new(AuthScheme::HmacSha1, EncScheme::None),
        durability: None,
        ..DeploymentConfig::default()
    };
    let mut deployment = Deployment::build(REACH_APP, &line_specs(), config).unwrap();
    assert!(matches!(
        deployment.add_replica("r", fresh_dir("no-dur")),
        Err(DurabilityError::Disabled)
    ));
    assert!(matches!(
        deployment.sync_replicas(),
        Err(DurabilityError::Disabled)
    ));
}

#[test]
fn fresh_build_refuses_directory_with_existing_state() {
    let dir = fresh_dir("refuse");
    let mut deployment = Deployment::build(REACH_APP, &line_specs(), durable_config(&dir)).unwrap();
    deployment.run().unwrap();
    drop(deployment);
    let error = match Deployment::build(REACH_APP, &line_specs(), durable_config(&dir)) {
        Err(error) => error,
        Ok(_) => panic!("fresh build over existing durable state must fail"),
    };
    assert!(error.to_string().contains("recover"), "got: {error}");
}
