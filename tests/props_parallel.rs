//! Property: sharded parallel evaluation is observably identical to serial
//! evaluation at every worker count.
//!
//! Random programs (joins, recursion, comparisons, assignments, stratified
//! negation, aggregation) over random edge relations are evaluated once per
//! worker count in `{1, 2, 4, 7}` with the shard threshold forced to 1 so
//! every execution takes the parallel path.  Every run must agree with the
//! single-worker baseline on:
//!
//! * the full fixpoint — every relation, byte for byte,
//! * the Merkle commitment of the database logged into a `secureblox-store`
//!   fact store,
//! * constraint verdicts (which probe batches commit vs roll back), and
//! * DRed retraction sequences — relations after every single retraction.
//!
//! Debug builds additionally assert parallel-vs-serial equivalence inside
//! every sharded rule execution (see `eval::exec`), so a shrunk failure here
//! pinpoints the diverging rule directly.

use proptest::prelude::*;
use secureblox_datalog::{EvalConfig, EvalOptions, Value, Workspace};
use secureblox_store::{derive_node_key, FactStore};
use std::path::PathBuf;

const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 7];

/// Verdict and `tc` contents observed after one retraction step.
type RetractionTrace = Vec<(bool, Vec<Vec<Value>>)>;

fn arb_edges() -> impl Strategy<Value = Vec<(u8, u8)>> {
    proptest::collection::vec(
        (any::<u8>(), any::<u8>()).prop_map(|(a, b)| (a % 8, b % 8)),
        0..32,
    )
}

/// A random-but-always-textually-valid program, mirroring the planner
/// equivalence suite: comparisons appear after their binders so the serial
/// evaluator never errors and equivalence is meaningful.  A runtime
/// constraint (`probe` tuples must be `tc`-reachable pairs) exercises the
/// planned constraint checker under every worker count.
fn build_program(cmp_kind: u8, with_negation: bool, with_agg: bool, with_triple: bool) -> String {
    let mut program = String::from(
        "tc(X, Y) <- e0(X, Y).\n\
         tc(X, Z) <- e0(X, Y), tc(Y, Z).\n\
         probe(X, Y) -> tc(X, Y).\n",
    );
    let cmp_tail = match cmp_kind % 4 {
        0 => "",
        1 => ", X != Z",
        2 => ", X <= Z",
        _ => ", X < 6",
    };
    program.push_str(&format!("join1(X, Z) <- e0(X, Y), e1(Y, Z){cmp_tail}.\n"));
    program.push_str("shift(X, C) <- e0(X, Y), C = Y + 1.\n");
    if with_triple {
        program.push_str("join2(X, W) <- e0(X, Y), e1(Y, Z), e0(Z, W).\n");
    }
    if with_negation {
        program.push_str("filt(X, Y) <- join1(X, Y), !e1(X, Y).\n");
    }
    if with_agg {
        program.push_str("total[X] = S <- agg<< S = sum(Y) >> e0(X, Y).\n");
    }
    program
}

/// One full scenario at a given worker count: install, load, fixpoint,
/// constraint probes, then a DRed retraction sequence.  Returns the
/// constraint verdicts and the sorted relations observed after each step.
fn run_scenario(
    program: &str,
    e0: &[(u8, u8)],
    e1: &[(u8, u8)],
    probes: &[(u8, u8)],
    retracts: &[(u8, u8)],
    workers: usize,
) -> (Workspace, Vec<bool>, RetractionTrace) {
    let mut ws = Workspace::with_config(EvalConfig {
        exec: EvalOptions {
            workers,
            parallel_threshold: 1,
        },
        ..EvalConfig::default()
    });
    ws.install_source(program).unwrap();
    for (pred, edges) in [("e0", e0), ("e1", e1)] {
        for (a, b) in edges {
            ws.assert_fact(pred, vec![Value::Int(*a as i64), Value::Int(*b as i64)])
                .unwrap();
        }
    }
    ws.fixpoint().unwrap();

    // Constraint verdicts: a probe batch commits iff the pair is reachable.
    let mut verdicts = Vec::with_capacity(probes.len());
    for (a, b) in probes {
        let outcome = ws.transaction(vec![(
            "probe".into(),
            vec![Value::Int(*a as i64), Value::Int(*b as i64)],
        )]);
        verdicts.push(outcome.is_ok());
    }

    // DRed retraction sequence: observe the verdict and the `tc` relation
    // after every step.  A retraction that breaks a committed `probe` fact's
    // constraint legitimately rolls back — that outcome must also be
    // identical at every worker count.
    let mut traces = Vec::with_capacity(retracts.len());
    for (a, b) in retracts {
        let outcome = ws.retract(vec![(
            "e0".into(),
            vec![Value::Int(*a as i64), Value::Int(*b as i64)],
        )]);
        traces.push((outcome.is_ok(), ws.query("tc")));
    }
    (ws, verdicts, traces)
}

/// Merkle-commit every relation of the workspace through the durable store's
/// commitment machinery and return the root.
fn merkle_root(ws: &Workspace, tag: &str) -> String {
    let dir: PathBuf =
        std::env::temp_dir().join(format!("sbx-props-parallel-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let key = derive_node_key(1, "props");
    let mut store = FactStore::open(&dir, &key).unwrap();
    for pred in ws.predicate_names() {
        let tuples = ws.query(&pred);
        store
            .log_inserts(tuples.iter().map(|t| (pred.as_str(), t)), 1)
            .unwrap();
    }
    let root = store.base_root_hex();
    drop(store);
    let _ = std::fs::remove_dir_all(&dir);
    root
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn parallel_fixpoint_equals_serial_at_any_worker_count(
        e0 in arb_edges(),
        e1 in arb_edges(),
        cmp_kind in any::<u8>(),
        with_negation in any::<bool>(),
        with_agg in any::<bool>(),
        with_triple in any::<bool>(),
        probe_seed in any::<u8>(),
    ) {
        let program = build_program(cmp_kind, with_negation, with_agg, with_triple);
        // Probe both a likely-reachable pair (an asserted edge) and an
        // arbitrary pair, so commits and rollbacks are both exercised.
        let mut probes: Vec<(u8, u8)> = Vec::new();
        if let Some(first) = e0.first() {
            probes.push(*first);
        }
        probes.push((probe_seed % 8, (probe_seed / 8) % 8));
        // Retract up to three distinct e0 edges, one at a time.
        let mut retracts: Vec<(u8, u8)> = e0.clone();
        retracts.sort();
        retracts.dedup();
        retracts.truncate(3);

        let (baseline_ws, baseline_verdicts, baseline_traces) =
            run_scenario(&program, &e0, &e1, &probes, &retracts, WORKER_COUNTS[0]);
        let baseline_root = merkle_root(&baseline_ws, "w1");

        for &workers in &WORKER_COUNTS[1..] {
            let (ws, verdicts, traces) =
                run_scenario(&program, &e0, &e1, &probes, &retracts, workers);
            prop_assert!(
                verdicts == baseline_verdicts,
                "constraint verdicts diverged at {} workers under program:\n{}",
                workers,
                program
            );
            prop_assert_eq!(baseline_ws.predicate_names(), ws.predicate_names());
            for pred in baseline_ws.predicate_names() {
                prop_assert!(
                    baseline_ws.query(&pred) == ws.query(&pred),
                    "relation {} diverged at {} workers under program:\n{}",
                    pred,
                    workers,
                    program
                );
            }
            prop_assert!(
                traces == baseline_traces,
                "DRed retraction trace diverged at {} workers under program:\n{}",
                workers,
                program
            );
            let root = merkle_root(&ws, &format!("w{workers}"));
            prop_assert!(
                root == baseline_root,
                "store Merkle root diverged at {} workers",
                workers
            );
        }
    }
}
