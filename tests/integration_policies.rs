//! Integration tests of policy customization: the same application text under
//! different `says` definitions, delegation models, and authorization rules
//! (paper §3.2 and §6).

use secureblox::policy::{compile_secured_program, says_policy, SecurityConfig, TrustModel};
use secureblox::runtime::{Deployment, DeploymentConfig, NodeSpec};
use secureblox::{AuthScheme, EncScheme, Value};

const APP: &str = r#"
    creditscore(U, S) -> string(U), int[32](S).
    exportable(`creditscore).
    says[`creditscore](self[], U, Name, Score) <- localscore(Name, Score), principal(U), U != self[].
"#;

fn specs() -> Vec<NodeSpec> {
    vec![
        NodeSpec {
            principal: "CA".into(),
            base_facts: vec![(
                "localscore".into(),
                vec![Value::str("alice"), Value::Int(720)],
            )],
        },
        NodeSpec {
            principal: "EvilCorp".into(),
            base_facts: vec![(
                "localscore".into(),
                vec![Value::str("alice"), Value::Int(350)],
            )],
        },
        NodeSpec {
            principal: "bank".into(),
            base_facts: vec![],
        },
    ]
}

#[test]
fn policy_source_changes_with_configuration_not_the_application() {
    // The exact point of the paper: swapping authentication schemes changes
    // only the policy text, never the application program.
    let hmac = says_policy(&SecurityConfig::new(AuthScheme::HmacSha1, EncScheme::None));
    let rsa = says_policy(&SecurityConfig::new(AuthScheme::Rsa, EncScheme::None));
    assert_ne!(hmac, rsa);
    for policy in [&hmac, &rsa] {
        assert!(
            !policy.contains("creditscore"),
            "policies are generic over predicates"
        );
    }
    // Both compile against the same application text.
    for config in [
        SecurityConfig::new(AuthScheme::HmacSha1, EncScheme::None),
        SecurityConfig::new(AuthScheme::Rsa, EncScheme::None),
    ] {
        let compiled = compile_secured_program(APP, &config, &[]).unwrap();
        assert_eq!(
            compiled.mapping("says", "creditscore"),
            Some("says$creditscore")
        );
    }
}

#[test]
fn per_predicate_delegation_only_accepts_the_credit_agency() {
    // The bank trusts only "CA" for creditscore (paper §6.1); EvilCorp's
    // report must not be imported even though EvilCorp is a known principal.
    let security = SecurityConfig {
        auth: AuthScheme::NoAuth,
        enc: EncScheme::None,
        trust: TrustModel::PerPredicate,
        ..SecurityConfig::default()
    };
    let config = DeploymentConfig {
        security,
        shared_facts: vec![(
            "trustworthyPerPred$creditscore".into(),
            vec![Value::str("CA")],
        )],
        ..DeploymentConfig::default()
    };
    let mut deployment = Deployment::build(APP, &specs(), config).unwrap();
    deployment.run().unwrap();
    let scores = deployment.query("bank", "creditscore");
    assert_eq!(scores, vec![vec![Value::str("alice"), Value::Int(720)]]);
    // Both says facts arrived (both senders are known principals) …
    assert_eq!(
        deployment
            .query("bank", "says$creditscore")
            .iter()
            .filter(|t| t[1] == Value::str("bank"))
            .count(),
        2
    );
    // … but only the delegated agency's fact was imported.
}

#[test]
fn trust_all_imports_everything() {
    let security = SecurityConfig {
        auth: AuthScheme::NoAuth,
        trust: TrustModel::TrustAll,
        ..SecurityConfig::default()
    };
    let config = DeploymentConfig {
        security,
        ..DeploymentConfig::default()
    };
    let mut deployment = Deployment::build(APP, &specs(), config).unwrap();
    deployment.run().unwrap();
    // With no delegation restriction the bank ends up with both reports —
    // functional-dependency-free predicate, so both rows coexist.
    assert_eq!(deployment.query("bank", "creditscore").len(), 2);
}

#[test]
fn generic_constraint_rejects_saying_unexportable_predicates() {
    let bad_app = r#"
        secrets(X) -> string(X).
        leak(X) <- says[`secrets](P, self[], X).
    "#;
    let err = compile_secured_program(bad_app, &SecurityConfig::default(), &[]).unwrap_err();
    assert!(err.to_string().contains("secrets"), "{err}");
}

#[test]
fn write_access_policy_appears_only_when_enabled() {
    let without = says_policy(&SecurityConfig::default());
    assert!(!without.contains("writeAccess"));
    let with = says_policy(&SecurityConfig {
        write_access: true,
        ..SecurityConfig::default()
    });
    assert!(with.contains("writeAccess[T](P1)"));
}
