//! Umbrella package for the SecureBlox reproduction.
//!
//! The substance of the reproduction lives in the workspace crates
//! (`secureblox`, `secureblox-datalog`, `secureblox-crypto`, `secureblox-net`,
//! `secureblox-generics`, `secureblox-store`, `secureblox-bench`); this
//! package exists to host the repo-level integration tests in `tests/` and
//! the runnable walkthroughs in `examples/`.

pub use secureblox;
pub use secureblox_store;
