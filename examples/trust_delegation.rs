//! Trust delegation and restricted delegation (paper §6.1).
//!
//! Three principals exchange credit scores:
//!
//! * `ca` — a credit agency that reports genuine scores,
//! * `mallory` — an imposter that also claims to report scores,
//! * `alice` — a consumer who wants to accept `creditscore` facts **only**
//!   from the credit agency.
//!
//! Alice runs the per-predicate delegation policy
//! (`TrustModel::PerPredicate`): a said fact is imported into the local
//! predicate only if the speaker appears in `trustworthyPerPred[T]`.  On top
//! of that she installs the paper's restricted-delegation constraint
//! `trustworthyPerPred[`creditscore](U) -> U = "ca"`, so even a
//! misconfiguration that trusts someone else is rejected at runtime.
//!
//! Run with:
//! ```text
//! cargo run --release --example trust_delegation
//! ```

use secureblox::policy::says::delegation_restriction;
use secureblox::policy::{SecurityConfig, TrustModel};
use secureblox::runtime::{Deployment, DeploymentConfig, NodeSpec};
use secureblox::{AuthScheme, EncScheme, Value};

/// The application: agencies report scores; consumers collect them.
const APP: &str = r#"
    customer(N) -> .
    creditscore(N, S) -> customer(N), int[32](S).
    myreport(N, S) -> customer(N), int[32](S).
    consumer(U) -> principal(U).
    exportable(`creditscore).

    // Every agency tells every consumer about the scores it holds.
    says[`creditscore](self[], U, N, S) <- myreport(N, S), consumer(U), U != self[].
"#;

fn specs(alice_trusts: &str) -> Vec<NodeSpec> {
    let mut alice = NodeSpec::new("alice");
    // Alice's local delegation decision: who she trusts for creditscore.
    alice.base_facts.push((
        "trustworthyPerPred$creditscore".into(),
        vec![Value::str(alice_trusts)],
    ));

    let mut ca = NodeSpec::new("ca");
    ca.base_facts
        .push(("myreport".into(), vec![Value::str("bob"), Value::Int(720)]));
    ca.base_facts.push((
        "myreport".into(),
        vec![Value::str("carol"), Value::Int(810)],
    ));

    let mut mallory = NodeSpec::new("mallory");
    mallory
        .base_facts
        .push(("myreport".into(), vec![Value::str("bob"), Value::Int(999)]));

    vec![alice, ca, mallory]
}

fn deployment_config() -> DeploymentConfig {
    DeploymentConfig {
        security: SecurityConfig {
            auth: AuthScheme::HmacSha1,
            enc: EncScheme::None,
            trust: TrustModel::PerPredicate,
            ..SecurityConfig::default()
        },
        // Trust is provisioned explicitly per node, not granted to everyone.
        grant_default_trust: false,
        // The restricted-delegation constraint from the paper's §6.1 example.
        extra_policies: vec![delegation_restriction("creditscore", "ca")],
        shared_facts: vec![
            ("customer".into(), vec![Value::str("bob")]),
            ("customer".into(), vec![Value::str("carol")]),
            ("consumer".into(), vec![Value::str("alice")]),
        ],
        ..DeploymentConfig::default()
    }
}

fn main() {
    // --- Scenario 1: Alice delegates creditscore to the credit agency. ---
    let mut deployment =
        Deployment::build(APP, &specs("ca"), deployment_config()).expect("deployment build failed");
    let report = deployment.run().expect("deployment run failed");

    let scores = deployment.query("alice", "creditscore");
    println!("scenario 1: alice trusts `ca` for creditscore");
    for row in &scores {
        println!("  creditscore({}, {})", row[0], row[1]);
    }
    let said: Vec<_> = deployment
        .query("alice", "says$creditscore")
        .into_iter()
        .filter(|t| t[0].as_str() == Some("mallory"))
        .collect();
    println!(
        "  mallory's claim was received ({} said fact{}) but never imported",
        said.len(),
        if said.len() == 1 { "" } else { "s" }
    );
    assert_eq!(
        scores.len(),
        2,
        "alice should hold exactly the agency's two scores"
    );
    assert!(scores.contains(&vec![Value::str("bob"), Value::Int(720)]));
    assert!(scores.contains(&vec![Value::str("carol"), Value::Int(810)]));
    assert!(
        scores.iter().all(|t| t[1].as_int() != Some(999)),
        "the imposter's score must not be imported"
    );
    assert_eq!(report.rejected_batches, 0);

    // --- Scenario 2: Alice misconfigures trust towards mallory. ---
    // The restricted-delegation constraint rejects the bootstrap batch that
    // tries to install the bad delegation, so no score from mallory can ever
    // be imported.
    let mut misconfigured = Deployment::build(APP, &specs("mallory"), deployment_config())
        .expect("deployment build failed");
    let report = misconfigured.run().expect("deployment run failed");
    let scores = misconfigured.query("alice", "creditscore");
    println!("scenario 2: alice (mis)trusts `mallory` for creditscore");
    println!(
        "  delegation constraint rejected {} batch(es); alice holds {} creditscore facts",
        report.rejected_batches,
        scores.len()
    );
    assert!(
        report.rejected_batches >= 1,
        "the bad delegation must be rejected"
    );
    assert!(
        scores.iter().all(|t| t[1].as_int() != Some(999)),
        "the imposter's score must not appear even under misconfiguration"
    );
    println!("restricted delegation enforced: ok");
}
