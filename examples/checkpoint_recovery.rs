//! Walkthrough: durable deployments — checkpoint, crash, recover, replicate.
//!
//! Runs a three-node secured gossip/reachability deployment with durability
//! enabled, checkpoints every node into Merkle-committed snapshots, drops the
//! deployment ("crash"), recovers it from disk, and verifies the recovered
//! fixpoint commits to the identical roots.  Then demonstrates tamper
//! detection (one flipped WAL byte) and read-replica sync.
//!
//! Run with: `cargo run --release --example checkpoint_recovery`

use secureblox::policy::SecurityConfig;
use secureblox::runtime::{Deployment, DeploymentConfig, NodeSpec};
use secureblox::{AuthScheme, DurabilityConfig, EncScheme, Value};
use secureblox_store::{derive_node_key, sync_deployment, FactStore, WalOp};

const APP: &str = r#"
    link(N1, N2) -> node(N1), node(N2).
    remote_link(N1, N2) -> node(N1), node(N2).
    reach(N1, N2) -> node(N1), node(N2).
    exportable(`remote_link).

    says[`remote_link](self[], U, X, Y) <- link(X, Y), principal(U), U != self[].
    reach(X, Y) <- link(X, Y).
    reach(X, Y) <- remote_link(X, Y).
    reach(X, Z) <- reach(X, Y), reach(Y, Z).
"#;

fn specs() -> Vec<NodeSpec> {
    vec![
        NodeSpec {
            principal: "n0".into(),
            base_facts: vec![("link".into(), vec![Value::str("n0"), Value::str("n1")])],
        },
        NodeSpec {
            principal: "n1".into(),
            base_facts: vec![("link".into(), vec![Value::str("n1"), Value::str("n2")])],
        },
        NodeSpec {
            principal: "n2".into(),
            base_facts: vec![],
        },
    ]
}

fn config(dir: &std::path::Path) -> DeploymentConfig {
    DeploymentConfig {
        security: SecurityConfig::new(AuthScheme::HmacSha1, EncScheme::None),
        durability: Some(DurabilityConfig::new(dir)),
        ..DeploymentConfig::default()
    }
}

fn main() {
    let base = std::env::temp_dir().join(format!("secureblox-example-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    let master_dir = base.join("master");
    let replica_dir = base.join("replica");

    println!("== 1. run a durable deployment to fixpoint ==");
    let mut deployment = Deployment::build(APP, &specs(), config(&master_dir)).unwrap();
    let report = deployment.run().unwrap();
    println!(
        "   {} nodes converged in {:?} virtual time ({} transactions)",
        report.num_nodes, report.fixpoint_latency, report.total_transactions
    );
    println!(
        "   n0 reach: {:?} tuples",
        deployment.query("n0", "reach").len()
    );

    println!("\n== 2. checkpoint: Merkle-committed snapshots per node ==");
    let checkpoints = deployment.checkpoint().unwrap();
    for checkpoint in &checkpoints {
        println!(
            "   {}  root={}  watermark={}ns",
            checkpoint.principal, checkpoint.root, checkpoint.watermark
        );
    }
    // The snapshot supersedes the logged history, so the checkpoint drops
    // every base-fact record; only the re-logged per-peer export cursor
    // survives the compaction (DESIGN.md §9.3).
    let wal_len = std::fs::metadata(master_dir.join("n0").join("wal.log"))
        .unwrap()
        .len();
    println!("   n0 WAL after checkpoint: {wal_len} bytes (export cursor only)");

    println!("\n== 3. crash (drop the deployment), then recover from disk ==");
    let reach_before = deployment.query("n0", "reach").len();
    drop(deployment);
    let n0_store = FactStore::open(master_dir.join("n0"), &derive_node_key(1, "n0")).unwrap();
    let suffix = n0_store.recovered_suffix().to_vec();
    println!(
        "   n0 compacted WAL holds {} export-cursor marks, 0 base facts",
        suffix.len()
    );
    assert!(!suffix.is_empty());
    assert!(suffix.iter().all(|record| record.op == WalOp::ExportMark));
    drop(n0_store);
    let recovered = Deployment::recover(&master_dir, APP, &specs(), config(&master_dir)).unwrap();
    println!(
        "   n0 reach after recovery: {:?} tuples",
        recovered.query("n0", "reach").len()
    );
    assert_eq!(recovered.query("n0", "reach").len(), reach_before);
    let roots = recovered.edb_roots().unwrap();
    let matches = checkpoints
        .iter()
        .zip(&roots)
        .all(|(c, (_, r))| &c.root == r);
    println!("   Merkle roots identical to checkpoint: {matches}");
    assert!(matches);

    println!("\n== 4. replicate: copy missing objects, swap HEAD, recover replica ==");
    let stats = sync_deployment(&master_dir, &replica_dir, 1).unwrap();
    for (node, s) in &stats {
        println!(
            "   {node}: copied {} objects, {} already present, {} WAL records shipped",
            s.copied, s.skipped, s.wal_records
        );
    }
    let replica = Deployment::recover(&replica_dir, APP, &specs(), config(&replica_dir)).unwrap();
    assert_eq!(
        replica.query("n2", "reach").len(),
        recovered.query("n2", "reach").len()
    );
    println!("   replica answers identical queries: true");

    println!("\n== 5. tamper with one WAL byte: typed detection, no panic ==");
    // Post-checkpoint work lands in the fresh (compacted) log; retract a
    // link so n0's WAL has a suffix worth tampering with.
    let mut recovered = recovered;
    recovered
        .retract(
            "n0",
            vec![("link".into(), vec![Value::str("n0"), Value::str("n1")])],
        )
        .unwrap();
    drop(recovered);
    let wal_path = master_dir.join("n0").join("wal.log");
    let mut bytes = std::fs::read(&wal_path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x01;
    std::fs::write(&wal_path, &bytes).unwrap();
    match Deployment::recover(&master_dir, APP, &specs(), config(&master_dir)) {
        Err(error) => println!("   recovery refused: {error}"),
        Ok(_) => panic!("tampered WAL must not recover"),
    }

    let _ = std::fs::remove_dir_all(&base);
    println!("\nDone.");
}
