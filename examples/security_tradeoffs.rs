//! Security / performance trade-off sweep — the headline claim of the paper:
//! "results demonstrate SecureBlox's abilities … to enable tradeoffs between
//! performance and security."
//!
//! Runs the authenticated path-vector protocol on one topology under every
//! combination of authentication (NoAuth, HMAC-SHA1, RSA) and confidentiality
//! (none, AES-128) and prints the metrics of Figures 4–7 side by side, so the
//! cost of each security increment is visible at a glance.
//!
//! Run with:
//! ```text
//! cargo run --release --example security_tradeoffs [nodes] [seed]
//! ```

use secureblox::apps::pathvector::{self, PathVectorConfig};
use secureblox::policy::SecurityConfig;
use secureblox::{AuthScheme, EncScheme};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let nodes: usize = args.first().and_then(|a| a.parse().ok()).unwrap_or(9);
    let seed: u64 = args.get(1).and_then(|a| a.parse().ok()).unwrap_or(1);

    let schemes = [
        (AuthScheme::NoAuth, EncScheme::None),
        (AuthScheme::NoAuth, EncScheme::Aes128),
        (AuthScheme::HmacSha1, EncScheme::None),
        (AuthScheme::HmacSha1, EncScheme::Aes128),
        (AuthScheme::Rsa, EncScheme::None),
        (AuthScheme::Rsa, EncScheme::Aes128),
    ];

    println!("path-vector protocol, {nodes} nodes, random graph seed {seed}");
    println!(
        "{:<12} {:>14} {:>14} {:>14} {:>10} {:>10}",
        "scheme", "fixpoint", "avg txn", "per-node KB", "messages", "routes"
    );

    let mut baseline_kb: Option<f64> = None;
    for (auth, enc) in schemes {
        let config = PathVectorConfig {
            num_nodes: nodes,
            seed,
            security: SecurityConfig::new(auth, enc),
            ..PathVectorConfig::default()
        };
        let label = config.security.label();
        let outcome = pathvector::run(&config).expect("path-vector run failed");
        assert_eq!(
            outcome.nodes_with_route_to_zero,
            nodes - 1,
            "every node must find a route regardless of the security scheme"
        );
        assert_eq!(outcome.report.rejected_batches, 0);
        let kb = outcome.report.per_node_kb;
        let overhead = baseline_kb
            .map(|base| format!("({:+.0}%)", (kb / base - 1.0) * 100.0))
            .unwrap_or_default();
        if baseline_kb.is_none() {
            baseline_kb = Some(kb);
        }
        println!(
            "{:<12} {:>14} {:>14} {:>10.1} KB {:>10} {:>10}   {overhead}",
            label,
            format!("{:.2?}", outcome.report.fixpoint_latency),
            format!("{:.2?}", outcome.report.average_transaction),
            kb,
            outcome.report.total_messages,
            outcome.nodes_with_route_to_zero,
        );
    }

    println!();
    println!("Reading the table: latency and per-node overhead grow monotonically with the");
    println!("strength of the scheme (NoAuth < HMAC < RSA; AES adds a small increment) while");
    println!("the protocol outcome — the routes found — is identical in every row.  The");
    println!("security configuration is chosen per deployment, without touching the protocol.");
}
