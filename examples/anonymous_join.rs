//! The anonymous join over an onion-routed circuit (paper §7.3).
//!
//! Run with:
//! ```text
//! cargo run --release --example anonymous_join [relays]
//! ```

use secureblox::apps::anonjoin::{self, AnonJoinConfig};

fn main() {
    let relays: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(3);
    let config = AnonJoinConfig {
        num_relays: relays,
        ..AnonJoinConfig::default()
    };
    println!(
        "anonymous join: {} interests against {} public rows over a circuit with {relays} relays",
        config.interest_rows, config.public_rows
    );
    let outcome = anonjoin::run(&config).expect("anonymous join failed");
    println!(
        "replies at the initiator: {} (expected {}); owner ever saw the initiator: {}",
        outcome.replies_at_initiator, outcome.expected_matches, !outcome.owner_never_saw_initiator
    );
    assert_eq!(outcome.replies_at_initiator, outcome.expected_matches);
    assert!(outcome.owner_never_saw_initiator);
    println!(
        "anonymity preserved; per-node overhead {:.2} KB",
        outcome.report.per_node_kb
    );
}
