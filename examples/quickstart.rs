//! Quickstart: secure the paper's motivating example (distributed transitive
//! closure, §3.1) with a customizable `says` policy and run it on a handful
//! of simulated nodes.
//!
//! Run with:
//! ```text
//! cargo run --release --example quickstart [NoAuth|HMAC|RSA] [AES]
//! ```

use secureblox::policy::SecurityConfig;
use secureblox::runtime::{Deployment, DeploymentConfig, NodeSpec};
use secureblox::{AuthScheme, EncScheme, Value};

/// The application program: each node gossips its links; every node builds
/// the transitive closure from what trusted principals said to it.
const APP: &str = r#"
    link(N1, N2) -> node(N1), node(N2).
    edge(N1, N2) -> node(N1), node(N2).
    reachable(X, Y) -> node(X), node(Y).
    exportable(`edge).

    // Tell every other principal about my local links.
    says[`edge](self[], U, X, Y) <- link(X, Y), principal(U), U != self[].

    // Locally known links are edges too; reachability is their closure.
    edge(X, Y) <- link(X, Y).
    reachable(X, Y) <- edge(X, Y).
    reachable(X, Y) <- edge(X, Z), reachable(Z, Y).
"#;

fn parse_security() -> SecurityConfig {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let auth = match args.first().map(|s| s.as_str()) {
        Some("HMAC") => AuthScheme::HmacSha1,
        Some("RSA") => AuthScheme::Rsa,
        _ => AuthScheme::NoAuth,
    };
    let enc = if args.iter().any(|a| a == "AES") {
        EncScheme::Aes128
    } else {
        EncScheme::None
    };
    SecurityConfig::new(auth, enc)
}

fn main() {
    let security = parse_security();
    println!("security configuration: {}", security.label());

    // A little line topology: n0 - n1 - n2 - n3.
    let links = [("n0", "n1"), ("n1", "n2"), ("n2", "n3")];
    let mut specs: Vec<NodeSpec> = (0..4).map(|i| NodeSpec::new(format!("n{i}"))).collect();
    for (a, b) in links {
        let a_index: usize = a[1..].parse().unwrap();
        let b_index: usize = b[1..].parse().unwrap();
        specs[a_index]
            .base_facts
            .push(("link".into(), vec![Value::str(a), Value::str(b)]));
        specs[b_index]
            .base_facts
            .push(("link".into(), vec![Value::str(b), Value::str(a)]));
    }

    let config = DeploymentConfig {
        security,
        ..DeploymentConfig::default()
    };
    let mut deployment = Deployment::build(APP, &specs, config).expect("deployment build failed");
    let report = deployment.run().expect("deployment run failed");

    println!(
        "fixpoint latency {:?}, avg transaction {:?}, per-node overhead {:.2} KB, {} messages",
        report.fixpoint_latency,
        report.average_transaction,
        report.per_node_kb,
        report.total_messages
    );
    for i in 0..4 {
        let principal = format!("n{i}");
        let reachable = deployment.query(&principal, "reachable");
        println!("{principal} can reach {} node pairs", reachable.len());
    }
    let n0_reach = deployment.query("n0", "reachable");
    assert!(
        n0_reach.contains(&vec![Value::str("n0"), Value::str("n3")]),
        "n0 should learn a route to n3 through the gossiped edges"
    );
    println!("n0 reaches n3: ok");
}
