//! The authenticated / encrypted parallel hash join (paper §7.2 / §8.2).
//!
//! Run with:
//! ```text
//! cargo run --release --example secure_hash_join [nodes] [NoAuth|RSA-AES]
//! ```

use secureblox::apps::hashjoin::{self, HashJoinConfig};
use secureblox::policy::SecurityConfig;
use secureblox::{AuthScheme, EncScheme};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let nodes: usize = args.first().and_then(|a| a.parse().ok()).unwrap_or(6);
    let security = if args.iter().any(|a| a == "RSA-AES") {
        SecurityConfig::new(AuthScheme::Rsa, EncScheme::Aes128)
    } else {
        SecurityConfig::new(AuthScheme::NoAuth, EncScheme::None)
    };

    let config = HashJoinConfig {
        num_nodes: nodes,
        security,
        ..HashJoinConfig::default()
    };
    println!(
        "running a parallel hash join of {}x{} tuples over {nodes} nodes with {}",
        config.table_a_rows,
        config.table_b_rows,
        config.security.label()
    );
    let outcome = hashjoin::run(&config).expect("hash-join run failed");
    println!(
        "join results at the initiator: {} (expected {}), per-node overhead {:.1} KB, fixpoint {:?}",
        outcome.results_at_initiator,
        outcome.expected_results,
        outcome.report.per_node_kb,
        outcome.report.fixpoint_latency
    );
    assert_eq!(outcome.results_at_initiator, outcome.expected_results);
    if let (Some(first), Some(last)) = (
        outcome.initiator_completions.first(),
        outcome.initiator_completions.last(),
    ) {
        println!("first result batch at {first:?}, last at {last:?}");
    }
}
