//! The authenticated path-vector routing protocol (paper §7.1 / §8.1), plus
//! a route-withdrawal scene showcasing distributed retraction: a link fails,
//! both endpoints retract their advertisements, signed `Retract` deltas
//! propagate through the `says` channels, and the network re-converges on
//! the surviving topology.
//!
//! Run with:
//! ```text
//! cargo run --release --example path_vector [nodes] [NoAuth|HMAC|RSA] [AES]
//! ```

use secureblox::apps::pathvector::{self, PathVectorConfig};
use secureblox::policy::SecurityConfig;
use secureblox::{AuthScheme, EncScheme};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let nodes: usize = args.first().and_then(|a| a.parse().ok()).unwrap_or(6);
    let auth = if args.iter().any(|a| a == "RSA") {
        AuthScheme::Rsa
    } else if args.iter().any(|a| a == "HMAC") {
        AuthScheme::HmacSha1
    } else {
        AuthScheme::NoAuth
    };
    let enc = if args.iter().any(|a| a == "AES") {
        EncScheme::Aes128
    } else {
        EncScheme::None
    };

    let config = PathVectorConfig {
        num_nodes: nodes,
        security: SecurityConfig::new(auth, enc),
        ..PathVectorConfig::default()
    };
    println!(
        "running the path-vector protocol on {nodes} simulated nodes with {}",
        config.security.label()
    );
    let mut deployment = pathvector::build_deployment(&config).expect("build failed");
    let report = deployment.run().expect("path-vector run failed");
    let routes_to_zero = |deployment: &secureblox::runtime::Deployment| {
        (1..nodes)
            .filter(|&i| {
                deployment
                    .query(&pathvector::principal_name(i), "bestcost")
                    .iter()
                    .any(|t| t.get(1).and_then(|v| v.as_str()) == Some("n0"))
            })
            .count()
    };
    println!(
        "fixpoint latency {:?}, avg transaction {:?}, per-node overhead {:.1} KB",
        report.fixpoint_latency, report.average_transaction, report.per_node_kb
    );
    println!(
        "{} of {} nodes found a route to n0; {} rejected batches",
        routes_to_zero(&deployment),
        nodes - 1,
        report.rejected_batches
    );

    // Route withdrawal: fail the ring link n0–n1.  Both endpoints retract
    // the link; DRed removes every path composed over it; the withdrawals
    // ship as signed Retract deltas and the network re-converges (the ring
    // guarantees an alternative route the long way around).
    println!("\nlink n0-n1 fails: withdrawing the advertisement on both endpoints");
    pathvector::withdraw_link(&mut deployment, 0, 1).expect("withdrawal failed");
    let after = deployment.run().expect("re-convergence failed");
    println!(
        "re-converged: {} retraction deltas applied across the network",
        after.retractions_applied
    );
    println!(
        "{} of {} nodes still reach n0 over surviving links",
        routes_to_zero(&deployment),
        nodes - 1
    );
    let n1_best = deployment.query(&pathvector::principal_name(1), "bestcost");
    let n1_to_n0 = n1_best
        .iter()
        .find(|t| t.get(1).and_then(|v| v.as_str()) == Some("n0"))
        .and_then(|t| t.get(2).and_then(|v| v.as_int()));
    match n1_to_n0 {
        Some(cost) => println!("n1 now reaches n0 at cost {cost} (was 1 before the failure)"),
        None => println!("n1 has no remaining route to n0"),
    }
}
