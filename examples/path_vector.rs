//! The authenticated path-vector routing protocol (paper §7.1 / §8.1).
//!
//! Run with:
//! ```text
//! cargo run --release --example path_vector [nodes] [NoAuth|HMAC|RSA] [AES]
//! ```

use secureblox::apps::pathvector::{self, PathVectorConfig};
use secureblox::policy::SecurityConfig;
use secureblox::{AuthScheme, EncScheme};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let nodes: usize = args.first().and_then(|a| a.parse().ok()).unwrap_or(6);
    let auth = if args.iter().any(|a| a == "RSA") {
        AuthScheme::Rsa
    } else if args.iter().any(|a| a == "HMAC") {
        AuthScheme::HmacSha1
    } else {
        AuthScheme::NoAuth
    };
    let enc = if args.iter().any(|a| a == "AES") {
        EncScheme::Aes128
    } else {
        EncScheme::None
    };

    let config = PathVectorConfig {
        num_nodes: nodes,
        security: SecurityConfig::new(auth, enc),
        ..PathVectorConfig::default()
    };
    println!(
        "running the path-vector protocol on {nodes} simulated nodes with {}",
        config.security.label()
    );
    let outcome = pathvector::run(&config).expect("path-vector run failed");
    println!(
        "fixpoint latency {:?}, avg transaction {:?}, per-node overhead {:.1} KB",
        outcome.report.fixpoint_latency,
        outcome.report.average_transaction,
        outcome.report.per_node_kb
    );
    println!(
        "{} of {} nodes found a route to n0; {} best-cost entries in total; {} rejected batches",
        outcome.nodes_with_route_to_zero,
        nodes - 1,
        outcome.best_cost_entries,
        outcome.report.rejected_batches
    );
}
